exception Singular of int

let eps_pivot = 1e-300

let check_square name a =
  if Mat.rows a <> Mat.cols a then invalid_arg ("Tri." ^ name ^ ": not square")

let check_rhs name n b =
  if Array.length b <> n then
    invalid_arg ("Tri." ^ name ^ ": right-hand side length mismatch")

let solve_lower_sub l k b =
  if k < 0 || k > Mat.rows l || k > Mat.cols l then
    invalid_arg "Tri.solve_lower_sub: block size out of range";
  check_rhs "solve_lower_sub" k b;
  let x = Array.make k 0. in
  for i = 0 to k - 1 do
    let acc = ref b.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.unsafe_get l i j *. x.(j))
    done;
    let d = Mat.unsafe_get l i i in
    if Float.abs d < eps_pivot then raise (Singular i);
    x.(i) <- !acc /. d
  done;
  x

let solve_lower_transposed_sub l k b =
  if k < 0 || k > Mat.rows l || k > Mat.cols l then
    invalid_arg "Tri.solve_lower_transposed_sub: block size out of range";
  check_rhs "solve_lower_transposed_sub" k b;
  let x = Array.make k 0. in
  for i = k - 1 downto 0 do
    let acc = ref b.(i) in
    for j = i + 1 to k - 1 do
      acc := !acc -. (Mat.unsafe_get l j i *. x.(j))
    done;
    let d = Mat.unsafe_get l i i in
    if Float.abs d < eps_pivot then raise (Singular i);
    x.(i) <- !acc /. d
  done;
  x

let solve_lower l b =
  check_square "solve_lower" l;
  solve_lower_sub l (Mat.rows l) b

let solve_lower_transposed l b =
  check_square "solve_lower_transposed" l;
  solve_lower_transposed_sub l (Mat.rows l) b

let solve_upper u b =
  check_square "solve_upper" u;
  let n = Mat.rows u in
  check_rhs "solve_upper" n b;
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref b.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.unsafe_get u i j *. x.(j))
    done;
    let d = Mat.unsafe_get u i i in
    if Float.abs d < eps_pivot then raise (Singular i);
    x.(i) <- !acc /. d
  done;
  x
