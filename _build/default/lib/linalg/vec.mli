(** Dense vectors of floats.

    A vector is a plain [float array]; this module collects the numerical
    kernels used throughout the library (BLAS level-1 style operations).
    All binary operations require equal lengths and raise
    [Invalid_argument] otherwise. *)

type t = float array

val create : int -> t
(** [create n] is a fresh zero vector of length [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; f 1; ...; f (n-1) |]. *)

val copy : t -> t
(** [copy v] is a fresh copy of [v]. *)

val dim : t -> int
(** [dim v] is the length of [v]. *)

val fill : t -> float -> unit
(** [fill v c] sets every entry of [v] to [c]. *)

val of_list : float list -> t

val to_list : t -> float list

val dot : t -> t -> float
(** [dot x y] is the inner product [Σ xᵢ·yᵢ]. *)

val nrm2 : t -> float
(** [nrm2 x] is the Euclidean norm [‖x‖₂], computed with scaling to
    avoid premature overflow/underflow. *)

val nrm2_sq : t -> float
(** [nrm2_sq x] is [‖x‖₂²] (no scaling; fine for well-ranged data). *)

val asum : t -> float
(** [asum x] is the L1 norm [Σ |xᵢ|]. *)

val norm0 : ?tol:float -> t -> int
(** [norm0 ?tol x] counts entries with [|xᵢ| > tol] (default [tol = 0.]);
    the "L0 norm" of the paper's sparsity constraint. *)

val amax : t -> int
(** [amax x] is the index of the entry with largest absolute value.
    Raises [Invalid_argument] on the empty vector. *)

val scal : float -> t -> unit
(** [scal a x] scales [x] in place: [x ← a·x]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] updates [y ← a·x + y] in place. *)

val add : t -> t -> t
(** [add x y] is the fresh vector [x + y]. *)

val sub : t -> t -> t
(** [sub x y] is the fresh vector [x − y]. *)

val smul : float -> t -> t
(** [smul a x] is the fresh vector [a·x]. *)

val neg : t -> t
(** [neg x] is [−x], fresh. *)

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val sum : t -> float
(** [sum x] is [Σ xᵢ] using Kahan compensated summation. *)

val mean : t -> float
(** [mean x] is the arithmetic mean. Raises on the empty vector. *)

val dist2 : t -> t -> float
(** [dist2 x y] is [‖x − y‖₂]. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** [approx_equal ?tol x y] holds when the vectors have equal length and
    every entry differs by at most [tol] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer: [[1.; 2.; 3.]] style, abbreviated beyond 8 entries. *)
