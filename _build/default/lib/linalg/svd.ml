type t = { u : Mat.t; sigma : Vec.t; v : Mat.t }

(* One-sided Jacobi: rotate column pairs of the working matrix W (a copy
   of A) until all pairs are orthogonal; then σ_j = ‖w_j‖, u_j = w_j/σ_j,
   and V accumulates the rotations. *)
let decompose ?(max_sweeps = 60) ?(tol = 1e-12) a =
  let m = Mat.rows a and n = Mat.cols a in
  if m < n then invalid_arg "Svd.decompose: more columns than rows";
  let w = Mat.copy a in
  let v = Mat.identity n in
  let col_dot p q =
    let acc = ref 0. in
    for i = 0 to m - 1 do
      acc := !acc +. (Mat.unsafe_get w i p *. Mat.unsafe_get w i q)
    done;
    !acc
  in
  let rotate p q c s =
    for i = 0 to m - 1 do
      let wip = Mat.unsafe_get w i p and wiq = Mat.unsafe_get w i q in
      Mat.unsafe_set w i p ((c *. wip) +. (s *. wiq));
      Mat.unsafe_set w i q ((c *. wiq) -. (s *. wip))
    done;
    for i = 0 to n - 1 do
      let vip = Mat.unsafe_get v i p and viq = Mat.unsafe_get v i q in
      Mat.unsafe_set v i p ((c *. vip) +. (s *. viq));
      Mat.unsafe_set v i q ((c *. viq) -. (s *. vip))
    done
  in
  let converged = ref false and sweep = ref 0 in
  while (not !converged) && !sweep < max_sweeps do
    incr sweep;
    let off = ref 0. in
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = col_dot p q in
        let app = col_dot p p and aqq = col_dot q q in
        let denom = sqrt (app *. aqq) in
        if denom > 0. && Float.abs apq > tol *. denom then begin
          off := Float.max !off (Float.abs apq /. denom);
          (* Jacobi rotation zeroing the (p,q) entry of WᵀW. With the
             rotation convention used in [rotate] (new_p = c·p + s·q,
             new_q = c·q − s·p), the zeroing angle satisfies
             (c² − s²)·a_pq = c·s·(a_pp − a_qq). *)
          let theta = (app -. aqq) /. (2. *. apq) in
          let t =
            let sign = if theta >= 0. then 1. else -1. in
            sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
          in
          let c = 1. /. sqrt ((t *. t) +. 1.) in
          let s = c *. t in
          rotate p q c s
        end
      done
    done;
    if !off <= tol then converged := true
  done;
  (* Extract singular values and left vectors; sort decreasing. *)
  let sig_unsorted =
    Array.init n (fun j ->
        let acc = ref 0. in
        for i = 0 to m - 1 do
          let x = Mat.unsafe_get w i j in
          acc := !acc +. (x *. x)
        done;
        sqrt !acc)
  in
  let order = Array.init n (fun j -> j) in
  Array.sort (fun a b -> compare sig_unsorted.(b) sig_unsorted.(a)) order;
  let sigma = Array.map (fun j -> sig_unsorted.(j)) order in
  let u =
    Mat.init m n (fun i jj ->
        let j = order.(jj) in
        if sigma.(jj) > 0. then Mat.unsafe_get w i j /. sigma.(jj) else 0.)
  in
  let v_sorted = Mat.init n n (fun i jj -> Mat.unsafe_get v i order.(jj)) in
  { u; sigma; v = v_sorted }

let reconstruct { u; sigma; v } =
  let n = Array.length sigma in
  let us = Mat.init (Mat.rows u) n (fun i j -> Mat.unsafe_get u i j *. sigma.(j)) in
  Mat.mul us (Mat.transpose v)

let rank ?(tol = 1e-10) d =
  if Array.length d.sigma = 0 then 0
  else begin
    let top = d.sigma.(0) in
    let r = ref 0 in
    Array.iter (fun s -> if s > tol *. top then incr r) d.sigma;
    !r
  end

let condition_number d =
  let n = Array.length d.sigma in
  if n = 0 then 1.
  else if d.sigma.(n - 1) = 0. then Float.infinity
  else d.sigma.(0) /. d.sigma.(n - 1)

let pseudo_inverse ?(tol = 1e-10) d =
  let n = Array.length d.sigma in
  let top = if n = 0 then 0. else d.sigma.(0) in
  (* V·diag(σ⁺)·Uᵀ *)
  let vs =
    Mat.init n n (fun i j ->
        if d.sigma.(j) > tol *. top then Mat.unsafe_get d.v i j /. d.sigma.(j)
        else 0.)
  in
  Mat.mul vs (Mat.transpose d.u)

let solve_min_norm ?tol d b =
  if Array.length b <> Mat.rows d.u then
    invalid_arg "Svd.solve_min_norm: right-hand side length mismatch";
  Mat.mulv (pseudo_inverse ?tol d) b
