type decomposition = { values : Vec.t; vectors : Mat.t }

let off_diagonal_norm a =
  let n = Mat.rows a in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = Mat.unsafe_get a i j in
      acc := !acc +. (2. *. v *. v)
    done
  done;
  sqrt !acc

let symmetric ?(max_sweeps = 64) ?(tol = 1e-12) a0 =
  if Mat.rows a0 <> Mat.cols a0 then invalid_arg "Eigen.symmetric: not square";
  let scale = Float.max (Mat.max_abs a0) 1e-300 in
  if not (Mat.is_symmetric ~tol:(1e-8 *. scale) a0) then
    invalid_arg "Eigen.symmetric: matrix is not symmetric";
  let n = Mat.rows a0 in
  let a = Mat.copy a0 in
  let v = Mat.identity n in
  let fro = Float.max (Mat.frobenius a0) 1e-300 in
  let sweep = ref 0 in
  while off_diagonal_norm a > tol *. fro && !sweep < max_sweeps do
    incr sweep;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Mat.unsafe_get a p q in
        if Float.abs apq > 1e-300 then begin
          let app = Mat.unsafe_get a p p and aqq = Mat.unsafe_get a q q in
          (* Stable rotation angle computation (Golub & Van Loan 8.4). *)
          let theta = (aqq -. app) /. (2. *. apq) in
          let t =
            let s = if theta >= 0. then 1. else -1. in
            s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
          in
          let c = 1. /. sqrt ((t *. t) +. 1.) in
          let s = t *. c in
          (* Rotate rows/columns p and q of A. *)
          for k = 0 to n - 1 do
            let akp = Mat.unsafe_get a k p and akq = Mat.unsafe_get a k q in
            Mat.unsafe_set a k p ((c *. akp) -. (s *. akq));
            Mat.unsafe_set a k q ((s *. akp) +. (c *. akq))
          done;
          for k = 0 to n - 1 do
            let apk = Mat.unsafe_get a p k and aqk = Mat.unsafe_get a q k in
            Mat.unsafe_set a p k ((c *. apk) -. (s *. aqk));
            Mat.unsafe_set a q k ((s *. apk) +. (c *. aqk))
          done;
          (* Accumulate the rotation into V. *)
          for k = 0 to n - 1 do
            let vkp = Mat.unsafe_get v k p and vkq = Mat.unsafe_get v k q in
            Mat.unsafe_set v k p ((c *. vkp) -. (s *. vkq));
            Mat.unsafe_set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  let order = Array.init n (fun i -> i) in
  let diag = Array.init n (fun i -> Mat.unsafe_get a i i) in
  Array.sort (fun i j -> compare diag.(j) diag.(i)) order;
  let values = Array.map (fun i -> diag.(i)) order in
  let vectors = Mat.init n n (fun i j -> Mat.unsafe_get v i order.(j)) in
  { values; vectors }

let reconstruct d =
  let n = Array.length d.values in
  let scaled =
    Mat.init n n (fun i j -> Mat.unsafe_get d.vectors i j *. d.values.(j))
  in
  Mat.mul scaled (Mat.transpose d.vectors)
