(** Symmetric eigendecomposition by the cyclic Jacobi method.

    Used by the PCA substrate to extract independent variation factors
    from a correlated process-parameter covariance matrix. Jacobi is
    O(n³) per sweep but robust, simple, and more than fast enough for the
    covariance block sizes that arise here (PCA is applied per correlated
    group, not to the full 10⁴-dimensional space). *)

type decomposition = {
  values : Vec.t;  (** Eigenvalues, sorted in decreasing order. *)
  vectors : Mat.t;
      (** Column [j] is the unit eigenvector for [values.(j)];
          [A = V·diag(values)·Vᵀ]. *)
}

val symmetric : ?max_sweeps:int -> ?tol:float -> Mat.t -> decomposition
(** [symmetric a] decomposes the symmetric matrix [a].
    @param max_sweeps iteration cap (default 64).
    @param tol off-diagonal convergence threshold relative to the
    Frobenius norm (default 1e-12).
    @raise Invalid_argument if [a] is not square or not symmetric to
    within [1e-8] relative tolerance. *)

val reconstruct : decomposition -> Mat.t
(** [reconstruct d] is [V·diag(values)·Vᵀ] (for testing). *)
