(** Singular value decomposition by one-sided Jacobi.

    For [A] of shape [m×n] ([m ≥ n]) computes the thin decomposition
    [A = U·diag(σ)·Vᵀ] with [U] ([m×n]) having orthonormal columns,
    [V] ([n×n]) orthogonal and [σ₁ ≥ … ≥ σₙ ≥ 0].

    One-sided Jacobi orthogonalizes the columns of a working copy of
    [A] by plane rotations — slower than bidiagonalization-based
    methods but simple, accurate for small singular values, and without
    external dependencies. Used for dictionary-conditioning analysis
    (mutual coherence / RIP-style diagnostics of sampled Hermite
    dictionaries) and the pseudo-inverse. *)

type t = { u : Mat.t; sigma : Vec.t; v : Mat.t }

val decompose : ?max_sweeps:int -> ?tol:float -> Mat.t -> t
(** [decompose a] computes the thin SVD.
    @param max_sweeps Jacobi sweep cap (default 60).
    @param tol off-orthogonality threshold (default 1e-12).
    @raise Invalid_argument when [a] has more columns than rows
    (transpose first). *)

val reconstruct : t -> Mat.t
(** [U·diag(σ)·Vᵀ] (for tests). *)

val rank : ?tol:float -> t -> int
(** Number of singular values above [tol·σ₁] (default 1e-10). *)

val condition_number : t -> float
(** [σ₁/σₙ]; [infinity] when σₙ = 0. *)

val pseudo_inverse : ?tol:float -> t -> Mat.t
(** Moore–Penrose pseudo-inverse [V·diag(σ⁺)·Uᵀ], truncating singular
    values below [tol·σ₁] (default 1e-10). *)

val solve_min_norm : ?tol:float -> t -> Vec.t -> Vec.t
(** [solve_min_norm f b] is the minimum-norm least-squares solution
    [A⁺·b] — the L2 answer to the underdetermined problem, against
    which the sparse solutions are contrasted. *)
