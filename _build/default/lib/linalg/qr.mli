(** Householder QR factorization and QR-based least squares.

    For a matrix [A] of shape [m×n] with [m ≥ n], [factor] computes the
    compact factorization [A = Q·R] where [Q] has orthonormal columns
    ([m×n]) and [R] is upper triangular ([n×n]). The factored form stores
    the Householder reflectors in place; [q] and [r] materialize the
    factors on demand.

    QR is numerically safer than normal equations when the design matrix
    is ill-conditioned (condition number enters once rather than
    squared); the library uses it for the over-determined LS baseline. *)

type t
(** Opaque factorization of an [m×n] matrix ([m ≥ n]). *)

val factor : Mat.t -> t
(** [factor a] computes the Householder QR factorization.
    @raise Invalid_argument when [a] has more columns than rows. *)

val r : t -> Mat.t
(** [r f] is the [n×n] upper-triangular factor. *)

val q : t -> Mat.t
(** [q f] is the [m×n] thin orthogonal factor (materialized). *)

val qt_apply : t -> Vec.t -> Vec.t
(** [qt_apply f b] is the first [n] entries of [Qᵀ·b], computed by applying
    the stored reflectors (no [Q] materialization). *)

val solve : t -> Vec.t -> Vec.t
(** [solve f b] is the least-squares solution [argmin ‖A·x − b‖₂].
    @raise Tri.Singular when [A] is numerically rank-deficient. *)

val lstsq : Mat.t -> Vec.t -> Vec.t
(** [lstsq a b] is [solve (factor a) b]. *)

val rank_revealing_diag : t -> Vec.t
(** Diagonal of [R] in absolute value — a cheap rank/conditioning probe. *)
