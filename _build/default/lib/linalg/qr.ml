(* Householder QR with reflectors stored below the diagonal of the working
   matrix and the scaling factors in [beta]. Column j's reflector is
   v = [1; a(j+1..m-1, j)] with H = I − beta·v·vᵀ. *)

type t = { m : int; n : int; a : Mat.t; beta : float array; rdiag : float array }

let factor a0 =
  let m = Mat.rows a0 and n = Mat.cols a0 in
  if m < n then invalid_arg "Qr.factor: matrix has more columns than rows";
  let a = Mat.copy a0 in
  let beta = Array.make n 0. in
  let rdiag = Array.make n 0. in
  for j = 0 to n - 1 do
    (* Norm of the column below (and including) the diagonal. *)
    let scale = ref 0. in
    for i = j to m - 1 do
      scale := Float.max !scale (Float.abs (Mat.unsafe_get a i j))
    done;
    if !scale = 0. then begin
      beta.(j) <- 0.;
      rdiag.(j) <- 0.
    end
    else begin
      let s = ref 0. in
      for i = j to m - 1 do
        let v = Mat.unsafe_get a i j /. !scale in
        s := !s +. (v *. v)
      done;
      let normx = !scale *. sqrt !s in
      let ajj = Mat.unsafe_get a j j in
      let alpha = if ajj >= 0. then -.normx else normx in
      (* v = x − alpha·e1, normalized so v(j) = 1. *)
      let v0 = ajj -. alpha in
      beta.(j) <- -.(v0 /. alpha);
      rdiag.(j) <- alpha;
      for i = j + 1 to m - 1 do
        Mat.unsafe_set a i j (Mat.unsafe_get a i j /. v0)
      done;
      Mat.unsafe_set a j j alpha;
      (* Apply H to the trailing columns. *)
      for k = j + 1 to n - 1 do
        let acc = ref (Mat.unsafe_get a j k) in
        for i = j + 1 to m - 1 do
          acc := !acc +. (Mat.unsafe_get a i j *. Mat.unsafe_get a i k)
        done;
        let t = beta.(j) *. !acc in
        Mat.unsafe_set a j k (Mat.unsafe_get a j k -. t);
        for i = j + 1 to m - 1 do
          Mat.unsafe_set a i k
            (Mat.unsafe_get a i k -. (t *. Mat.unsafe_get a i j))
        done
      done
    end
  done;
  { m; n; a; beta; rdiag }

let r f =
  Mat.init f.n f.n (fun i j -> if j >= i then Mat.unsafe_get f.a i j else 0.)

let apply_reflectors_transposed f b =
  (* y ← Qᵀ·b by applying H_0, H_1, ... in order. *)
  let y = Array.copy b in
  for j = 0 to f.n - 1 do
    if f.beta.(j) <> 0. then begin
      let acc = ref y.(j) in
      for i = j + 1 to f.m - 1 do
        acc := !acc +. (Mat.unsafe_get f.a i j *. y.(i))
      done;
      let t = f.beta.(j) *. !acc in
      y.(j) <- y.(j) -. t;
      for i = j + 1 to f.m - 1 do
        y.(i) <- y.(i) -. (t *. Mat.unsafe_get f.a i j)
      done
    end
  done;
  y

let qt_apply f b =
  if Array.length b <> f.m then invalid_arg "Qr.qt_apply: length mismatch";
  Array.sub (apply_reflectors_transposed f b) 0 f.n

let q f =
  (* Materialize thin Q by applying reflectors to the identity columns:
     Q·e_k = H_0·…·H_{n-1}·e_k applied in reverse order. *)
  let qm = Mat.create f.m f.n in
  for k = 0 to f.n - 1 do
    let y = Array.make f.m 0. in
    y.(k) <- 1.;
    for j = f.n - 1 downto 0 do
      if f.beta.(j) <> 0. then begin
        let acc = ref y.(j) in
        for i = j + 1 to f.m - 1 do
          acc := !acc +. (Mat.unsafe_get f.a i j *. y.(i))
        done;
        let t = f.beta.(j) *. !acc in
        y.(j) <- y.(j) -. t;
        for i = j + 1 to f.m - 1 do
          y.(i) <- y.(i) -. (t *. Mat.unsafe_get f.a i j)
        done
      end
    done;
    Mat.set_col qm k y
  done;
  qm

let solve f b =
  if Array.length b <> f.m then invalid_arg "Qr.solve: length mismatch";
  let y = qt_apply f b in
  (* Back substitution against the R stored in the upper triangle of a. *)
  let x = Array.make f.n 0. in
  for i = f.n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to f.n - 1 do
      acc := !acc -. (Mat.unsafe_get f.a i j *. x.(j))
    done;
    let d = Mat.unsafe_get f.a i i in
    if Float.abs d < 1e-300 then raise (Tri.Singular i);
    x.(i) <- !acc /. d
  done;
  x

let lstsq a b = solve (factor a) b

let rank_revealing_diag f = Array.map Float.abs f.rdiag
