(* Sparse recovery and the K = O(P log M) law.

   Demonstrates the theoretical foundation the paper leans on
   (Section IV-B, Tropp & Gilbert): the number of sampling points needed
   to determine a P-sparse coefficient vector grows only logarithmically
   with the number of unknowns M — which is why 10^2-10^3 simulations
   can pin down 10^4-10^6 coefficients.

   Run with: dune exec examples/sparse_recovery.exe *)

open Linalg

let recovery_rate rng ~k ~m ~p ~trials =
  let ok = ref 0 in
  for _ = 1 to trials do
    let g = Randkit.Gaussian.matrix rng k m in
    let support = Randkit.Sampling.subsample rng (Array.init m Fun.id) p in
    Array.sort compare support;
    let coeffs =
      Array.init p (fun _ ->
          (if Randkit.Prng.bool rng then 1. else -1.)
          *. (0.5 +. Randkit.Prng.float rng))
    in
    let f =
      Array.init k (fun i ->
          let acc = ref 0. in
          Array.iteri
            (fun q j -> acc := !acc +. (coeffs.(q) *. Mat.get g i j))
            support;
          !acc)
    in
    let model = Rsm.Omp.fit g f ~lambda:p in
    if model.Rsm.Model.support = support then incr ok
  done;
  float_of_int !ok /. float_of_int trials

let () =
  let rng = Randkit.Prng.create 2009 in
  let p = 8 in
  Printf.printf
    "How many samples K does OMP need to recover a %d-sparse vector, as the \
     number of unknowns M grows?\n\n" p;
  Printf.printf "%-8s %-10s %-14s %-12s\n" "M" "K(90%)" "P log M" "K / P log M";
  List.iter
    (fun m ->
      (* Find the smallest K in a doubling sweep with >= 90% recovery. *)
      let rec find k =
        if k > m then None
        else if recovery_rate rng ~k ~m ~p ~trials:20 >= 0.9 then Some k
        else find (k + 8)
      in
      match find (p + 8) with
      | Some k ->
          let plogm = float_of_int p *. log (float_of_int m) in
          Printf.printf "%-8d %-10d %-14.1f %-12.2f\n" m k plogm
            (float_of_int k /. plogm)
      | None -> Printf.printf "%-8d (not reached)\n" m)
    [ 100; 200; 400; 800; 1600 ];
  Printf.printf
    "\nThe last column is roughly constant: K grows like P log M, not like \
     M.\nDoubling the unknowns costs only a handful of extra samples - the \
     paper's 'deterministic solution from an underdetermined equation'.\n"
