(* OpAmp performance variability modeling — the paper's Section V-A
   workload end to end:

   1. build the two-stage OpAmp with its 630-dimensional variation space,
   2. "simulate" training and testing sets,
   3. fit sparse linear models of gain / bandwidth / power / offset with
      cross-validated OMP,
   4. interpret the selected basis functions physically,
   5. refine the offset model to quadratic over the most important
      parameters (Section V-A.2).

   Run with: dune exec examples/opamp_modeling.exe *)

let describe_factor p dim idx =
  (* Map a factor index back to its physical meaning. *)
  let ng = Circuit.Process.n_global_factors p in
  if idx < ng then Printf.sprintf "inter-die factor %d" idx
  else
    let local = idx - ng in
    let per_dev = 5 in
    let dev = local / per_dev and which = local mod per_dev in
    if dev < Circuit.Opamp.Device.count then
      let dev_name =
        match dev with
        | 0 -> "M1 (input pair)"
        | 1 -> "M2 (input pair)"
        | 2 -> "M3 (mirror load)"
        | 3 -> "M4 (mirror load)"
        | 4 -> "M5 (tail source)"
        | 5 -> "M6 (2nd stage)"
        | 6 -> "M7 (2nd-stage sink)"
        | 7 -> "M8 (bias diode)"
        | d -> Printf.sprintf "M%d (bias helper)" (d + 1)
      in
      let var_name =
        match which with
        | 0 -> "dVth"
        | 1 -> "dBeta"
        | 2 -> "dL"
        | _ -> Printf.sprintf "mismatch[%d]" which
      in
      Printf.sprintf "%s of %s" var_name dev_name
    else Printf.sprintf "parasitic %d" (idx - ng - (Circuit.Opamp.Device.count * per_dev))
    |> fun s -> if idx >= dim then "?" else s

let () =
  let amp = Circuit.Opamp.build () in
  let dim = Circuit.Opamp.dim amp in
  let p = Circuit.Opamp.process amp in
  Printf.printf "Two-stage OpAmp: %d independent variation factors after PCA\n" dim;
  let basis = Polybasis.Basis.constant_linear dim in
  let train = 600 and test = 2000 in
  Printf.printf "Training samples: %d (vs %d coefficients - underdetermined)\n\n"
    train (Polybasis.Basis.size basis);

  let offset_data = ref None in
  List.iter
    (fun metric ->
      let sim = Circuit.Opamp.simulator amp metric in
      let rng = Randkit.Prng.create 7 in
      let e = Circuit.Testbench.generate sim rng ~train ~test in
      let g_tr =
        Polybasis.Design.matrix_rows basis
          e.Circuit.Testbench.train.Circuit.Simulator.points
      in
      let g_te =
        Polybasis.Design.matrix_rows basis
          e.Circuit.Testbench.test.Circuit.Simulator.points
      in
      let f_tr = e.Circuit.Testbench.train.Circuit.Simulator.values in
      let f_te = e.Circuit.Testbench.test.Circuit.Simulator.values in
      let r = Rsm.Select.omp rng ~max_lambda:100 g_tr f_tr in
      let model = r.Rsm.Select.model in
      Printf.printf "%-10s nominal %8.2f %-3s | lambda=%-3d | test error %5.2f%%\n"
        (Circuit.Opamp.metric_name metric)
        (Circuit.Opamp.nominal amp metric)
        (Circuit.Opamp.metric_unit metric)
        r.Rsm.Select.lambda
        (100. *. Rsm.Model.error_on model g_te f_te);
      (* Show the three strongest selected factors, physically named. *)
      let pairs =
        Array.to_list
          (Array.mapi
             (fun q j -> (Float.abs model.Rsm.Model.coeffs.(q), j))
             model.Rsm.Model.support)
        |> List.filter (fun (_, j) -> j > 0)
        |> List.sort (fun (a, _) (b, _) -> compare b a)
      in
      List.iteri
        (fun i (mag, j) ->
          if i < 3 then
            Printf.printf "    %5.2f x %s\n" mag (describe_factor p dim (j - 1)))
        pairs;
      if metric = Circuit.Opamp.Offset then
        offset_data := Some (e, g_tr, f_tr, g_te, f_te, model))
    Circuit.Opamp.all_metrics;

  (* Section V-A.2: quadratic refinement of the offset model over the
     most important parameters. *)
  match !offset_data with
  | None -> ()
  | Some (e, _, f_tr, g_te, f_te, lin_model) ->
      let dense = Rsm.Model.to_dense lin_model in
      let scored = Array.init dim (fun j -> (Float.abs dense.(j + 1), j)) in
      Array.sort (fun (a, _) (b, _) -> compare b a) scored;
      let top = Array.map snd (Array.sub scored 0 30) in
      let quad = Polybasis.Basis.quadratic_subset ~dim top in
      Printf.printf
        "\nQuadratic refinement (offset): %d most important parameters -> %d \
         candidate bases\n"
        30 (Polybasis.Basis.size quad);
      let gq_tr =
        Polybasis.Design.matrix_rows quad
          e.Circuit.Testbench.train.Circuit.Simulator.points
      in
      let gq_te =
        Polybasis.Design.matrix_rows quad
          e.Circuit.Testbench.test.Circuit.Simulator.points
      in
      let rng = Randkit.Prng.create 9 in
      let rq = Rsm.Select.omp rng ~max_lambda:100 gq_tr f_tr in
      Printf.printf "linear    test error: %.3f%%\n"
        (100. *. Rsm.Model.error_on lin_model g_te f_te);
      Printf.printf "quadratic test error: %.3f%% (lambda = %d)\n"
        (100. *. Rsm.Model.error_on rq.Rsm.Select.model gq_te f_te)
        rq.Rsm.Select.lambda
