(* Worst-case corner extraction and model-stability diagnostics.

   Classical worst-case analysis (the paper's reference [6]) from a
   sparse model: fit the SRAM read-delay model, ask "how slow can the
   read get at 3 sigma?", extract the corner (an actual factor vector),
   verify it against the simulator, and check with the bootstrap that
   the model's support is stable enough to trust.

   Run with: dune exec examples/worst_case.exe *)

let () =
  let sram = Circuit.Sram.build ~cells:80 () in
  let dim = Circuit.Sram.dim sram in
  let sim = Circuit.Sram.simulator sram in
  let rng = Randkit.Prng.create 33 in

  (* Fit. *)
  let k = 400 in
  let data = Circuit.Simulator.run sim rng ~k in
  let basis = Polybasis.Basis.constant_linear dim in
  let g = Polybasis.Design.matrix_rows basis data.Circuit.Simulator.points in
  let r = Rsm.Select.omp rng ~max_lambda:80 g data.Circuit.Simulator.values in
  let model = r.Rsm.Select.model in
  Printf.printf "SRAM read delay model: %d of %d bases from %d simulations\n"
    (Rsm.Model.nnz model) (Polybasis.Basis.size basis) k;
  Printf.printf "Nominal delay: %.1f ps; model sigma: %.1f ps\n"
    (Circuit.Sram.nominal_delay_ps sram)
    (sqrt (Rsm.Sensitivity.total_variance model basis));
  (* The response-surface equation itself, truncated for display. *)
  let expr = Rsm.Serialize.to_expression model basis in
  Printf.printf "Model equation: %s ...\n"
    (String.sub expr 0 (min 100 (String.length expr)));

  (* Worst-case corners at increasing process radius. *)
  Printf.printf "\n%-8s %-16s %-16s %-10s\n" "radius" "model worst (ps)"
    "simulated (ps)" "gap";
  List.iter
    (fun sigma ->
      let e = Rsm.Corner.linear_worst model basis ~sigma ~maximize:true in
      let simulated = Circuit.Sram.read_delay_ps sram e.Rsm.Corner.corner in
      Printf.printf "%-8.1f %-16.1f %-16.1f %+.1f%%\n" sigma e.Rsm.Corner.value
        simulated
        (100. *. (e.Rsm.Corner.value -. simulated) /. simulated))
    [ 1.; 2.; 3.; 4. ];
  Printf.printf
    "(the corner is a concrete factor vector handed back to the simulator — \
     the gap is the model's extrapolation error at that corner)\n";

  (* Distribution tails: Gaussian vs Cornish-Fisher vs empirical. *)
  let vals = Rsm.Yield.monte_carlo_values ~samples:50_000 model basis rng in
  let mean, std, skew, kurt = Stat.Moments.summary vals in
  Printf.printf
    "\nModel distribution: mean %.1f ps, sigma %.1f ps, skew %.3f, excess \
     kurtosis %.3f (Jarque-Bera %.1f)\n"
    mean std skew kurt (Stat.Moments.jarque_bera vals);
  let p = 0.9999 in
  Printf.printf "99.99th percentile delay:\n";
  Printf.printf "  Gaussian         : %.1f ps\n"
    (mean +. (std *. Stat.Distribution.quantile p));
  Printf.printf "  Cornish-Fisher   : %.1f ps\n"
    (Stat.Moments.cornish_fisher_quantile ~mean ~std ~skew ~kurt_excess:kurt p);
  Printf.printf "  model Monte Carlo: %.1f ps\n"
    (Stat.Descriptive.quantile vals p);

  (* Bootstrap: is the selected support trustworthy? *)
  let report =
    Rsm.Bootstrap.run ~replicates:25 ~lambda:(Rsm.Model.nnz model) rng g
      data.Circuit.Simulator.values
  in
  let stable = Rsm.Bootstrap.stable_support ~threshold:0.8 report in
  Printf.printf
    "\nBootstrap (25 refits on resampled training sets): mean support %.1f, \
     %d bases selected in >= 80%% of replicates\n"
    report.Rsm.Bootstrap.mean_nnz (Array.length stable);
  Printf.printf "Most stable factors (selection frequency):\n";
  Array.iteri
    (fun i (j, fr) ->
      if i < 8 then Printf.printf "  basis %5d : %3.0f%%\n" j (100. *. fr))
    report.Rsm.Bootstrap.frequencies
