(* SRAM read-path delay modeling — the paper's Section V-B workload:
   thousands of variation factors, of which only a few dozen matter.

   Run with: dune exec examples/sram_read_path.exe [cells]
   (default 120 cells -> 2230 factors; pass 1180 for the paper's
   21310-factor configuration — slower and memory-hungry). *)

let () =
  let cells =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 120
  in
  let sram = Circuit.Sram.build ~cells () in
  let dim = Circuit.Sram.dim sram in
  Printf.printf "SRAM read path: %d cells, %d independent variation factors\n"
    cells dim;
  Printf.printf "Nominal read delay: %.1f ps\n\n" (Circuit.Sram.nominal_delay_ps sram);

  let basis = Polybasis.Basis.constant_linear dim in
  let train = 500 and test = 1500 in
  let sim = Circuit.Sram.simulator sram in
  let rng = Randkit.Prng.create 11 in
  let e = Circuit.Testbench.generate sim rng ~train ~test in
  Printf.printf
    "Drew %d training + %d testing Monte-Carlo samples (%d coefficients to \
     solve: underdetermined by %.0fx)\n"
    train test
    (Polybasis.Basis.size basis)
    (float_of_int (Polybasis.Basis.size basis) /. float_of_int train);

  let g_tr =
    Polybasis.Design.matrix_rows basis
      e.Circuit.Testbench.train.Circuit.Simulator.points
  in
  let g_te =
    Polybasis.Design.matrix_rows basis
      e.Circuit.Testbench.test.Circuit.Simulator.points
  in
  let f_tr = e.Circuit.Testbench.train.Circuit.Simulator.values in
  let f_te = e.Circuit.Testbench.test.Circuit.Simulator.values in

  let r = Rsm.Select.omp rng ~max_lambda:80 g_tr f_tr in
  let model = r.Rsm.Select.model in
  Printf.printf "\nOMP with 4-fold CV selected %d basis functions (of %d)\n"
    (Rsm.Model.nnz model)
    (Polybasis.Basis.size basis);
  Printf.printf "Testing error: %.2f%%\n"
    (100. *. Rsm.Model.error_on model g_te f_te);

  (* How many selected factors are on the read path? *)
  let important = Circuit.Sram.important_factors sram in
  let physical = ref 0 and total = ref 0 in
  Array.iter
    (fun bidx ->
      if bidx > 0 then begin
        incr total;
        if Array.mem (bidx - 1) important then incr physical
      end)
    model.Rsm.Model.support;
  Printf.printf
    "%d of %d selected factors lie on the read path (accessed cell, replica \
     column, sense amp, drivers, inter-die)\n"
    !physical !total;

  (* Delay prediction demo: one fresh sample, predicted vs simulated. *)
  let rng2 = Randkit.Prng.create 99 in
  let point, truth = Circuit.Simulator.run_one sim rng2 in
  Printf.printf "\nSpot check on a fresh sample:\n";
  Printf.printf "  simulated delay: %8.2f ps\n" truth;
  Printf.printf "  model predicts:  %8.2f ps (using %d of %d terms)\n"
    (Rsm.Model.predict_point model basis point)
    (Rsm.Model.nnz model) (Polybasis.Basis.size basis)
