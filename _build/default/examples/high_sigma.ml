(* High-sigma failure analysis: model-steered importance sampling.

   SRAM cells are replicated millions of times, so a single cell's
   failure probability must be known down to ~1e-8 — far beyond what
   plain Monte Carlo can see (you would wait ~1e9 Spectre runs for a
   handful of failures). The fitted sparse model knows *which direction*
   in the 1500-dimensional factor space makes the read slow; importance
   sampling shifts the sampling distribution along it and re-weights,
   reaching the deep tail with a few thousand simulator calls.

   Run with: dune exec examples/high_sigma.exe *)

let () =
  let sram = Circuit.Sram.build ~cells:80 () in
  let sim = Circuit.Sram.simulator sram in
  let rng = Randkit.Prng.create 55 in

  (* Fit the steering model. *)
  let k_fit = 400 in
  let data = Circuit.Simulator.run sim rng ~k:k_fit in
  let basis = Polybasis.Basis.constant_linear (Circuit.Sram.dim sram) in
  let design = Polybasis.Design.matrix_rows basis data.Circuit.Simulator.points in
  let r = Rsm.Select.omp rng ~max_lambda:80 design data.Circuit.Simulator.values in
  let model = r.Rsm.Select.model in
  let mu = Stat.Descriptive.mean data.Circuit.Simulator.values in
  let sd = Stat.Descriptive.std data.Circuit.Simulator.values in
  Printf.printf
    "Steering model: %d bases from %d simulations; delay ~ %.0f ps +/- %.0f ps\n"
    (Rsm.Model.nnz model) k_fit mu sd;

  Printf.printf
    "\n%-10s %-14s %-14s %-12s %-10s\n" "sigma" "threshold(ps)" "P(fail) IS"
    "std error" "Gaussian";
  List.iter
    (fun nsig ->
      let threshold = mu +. (nsig *. sd) in
      let e =
        Rsm.Variance_reduction.importance_sampling_tail ~samples:2000
          (fun dy -> Circuit.Sram.read_delay_ps sram dy)
          model basis rng ~threshold
      in
      let gauss = 1. -. Stat.Distribution.cdf nsig in
      Printf.printf "%-10.1f %-14.1f %-14.3e %-12.1e %-10.1e\n" nsig threshold
        e.Rsm.Variance_reduction.probability e.Rsm.Variance_reduction.std_error
        gauss)
    [ 3.; 4.; 5.; 6. ];
  Printf.printf
    "(Gaussian column: what a purely linear-normal delay would give — the \
     simulator's nonlinearity bends the real tail.)\n";

  (* What plain MC would need. *)
  let p5 = 1. -. Stat.Distribution.cdf 5. in
  Printf.printf
    "\nPlain MC at 5 sigma needs ~%.0e simulations for 10%% relative error; \
     IS above used 2000 (plus %d to fit the model).\n"
    (100. /. p5) k_fit;

  (* Control variates: a better mean estimate from the same budget. *)
  let cv =
    Rsm.Variance_reduction.control_variate_mean ~samples:300
      (fun dy -> Circuit.Sram.read_delay_ps sram dy)
      model basis rng
  in
  Printf.printf
    "\nControl-variate mean estimate: %.2f ps +/- %.3f ps (plain MC from the \
     same 300 runs: %.2f +/- %.3f; variance reduced %.0fx)\n"
    cv.Rsm.Variance_reduction.mean cv.Rsm.Variance_reduction.std_error
    cv.Rsm.Variance_reduction.plain_mean cv.Rsm.Variance_reduction.plain_std_error
    cv.Rsm.Variance_reduction.variance_reduction
