(* Quickstart: solve 500 model coefficients from 80 sampling points.

   The situation of the paper's title: the linear system G·alpha = F is
   underdetermined (80 equations, 500 unknowns), yet because only a few
   coefficients are non-zero, OMP finds a deterministic solution.

   Run with: dune exec examples/quickstart.exe *)

open Linalg

let () =
  let rng = Randkit.Prng.create 42 in
  let k = 80 (* sampling points *) and m = 500 (* model coefficients *) in

  (* A random dictionary and a 6-sparse ground truth. *)
  let g = Randkit.Gaussian.matrix rng k m in
  let true_support = [| 12; 77; 150; 303; 404; 490 |] in
  let true_coeffs = [| 2.5; -1.8; 1.2; 0.9; -0.6; 0.4 |] in
  let f =
    Array.init k (fun i ->
        let acc = ref 0. in
        Array.iteri
          (fun p j -> acc := !acc +. (true_coeffs.(p) *. Mat.get g i j))
          true_support;
        (* a little observation noise *)
        !acc +. (0.02 *. Randkit.Gaussian.sample rng))
  in

  Printf.printf "System: %d equations, %d unknowns (underdetermined)\n" k m;

  (* Cross-validation picks the sparsity level lambda automatically
     (Section IV-C of the paper). *)
  let r = Rsm.Select.omp rng ~max_lambda:20 g f in
  let model = r.Rsm.Select.model in
  Printf.printf "OMP selected lambda = %d basis vectors by 4-fold CV\n"
    r.Rsm.Select.lambda;

  Printf.printf "\n%-8s %-12s %-12s\n" "index" "true" "estimated";
  Array.iteri
    (fun p j ->
      Printf.printf "%-8d %-12.4f %-12.4f\n" j true_coeffs.(p)
        (Rsm.Model.coeff model j))
    true_support;

  let found =
    Array.for_all (fun j -> Rsm.Model.coeff model j <> 0.) true_support
  in
  Printf.printf "\nAll 6 true coefficients recovered: %b\n" found;
  Printf.printf "Model uses %d of %d coefficients; the rest are exactly 0.\n"
    (Rsm.Model.nnz model) m;

  (* Fresh validation data confirms there is no over-fitting. *)
  let k_test = 200 in
  let g_test = Randkit.Gaussian.matrix rng k_test m in
  let f_test =
    Array.init k_test (fun i ->
        let acc = ref 0. in
        Array.iteri
          (fun p j -> acc := !acc +. (true_coeffs.(p) *. Mat.get g_test i j))
          true_support;
        !acc)
  in
  Printf.printf "Validation error on %d fresh points: %.2f%%\n" k_test
    (100. *. Rsm.Model.error_on model g_test f_test)
