examples/quickstart.ml: Array Linalg Mat Printf Randkit Rsm
