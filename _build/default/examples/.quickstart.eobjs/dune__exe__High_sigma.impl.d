examples/high_sigma.ml: Circuit List Polybasis Printf Randkit Rsm Stat
