examples/sram_read_path.mli:
