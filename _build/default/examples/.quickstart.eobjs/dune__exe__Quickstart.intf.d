examples/quickstart.mli:
