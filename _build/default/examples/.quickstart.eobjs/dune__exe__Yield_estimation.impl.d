examples/yield_estimation.ml: Array Circuit Polybasis Printf Randkit Rsm Stat Unix
