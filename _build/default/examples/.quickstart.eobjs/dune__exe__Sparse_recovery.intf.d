examples/sparse_recovery.mli:
