examples/worst_case.mli:
