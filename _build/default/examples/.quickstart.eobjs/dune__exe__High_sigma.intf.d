examples/high_sigma.mli:
