examples/sram_read_path.ml: Array Circuit Polybasis Printf Randkit Rsm Sys
