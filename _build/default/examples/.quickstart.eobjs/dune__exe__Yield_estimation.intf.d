examples/yield_estimation.mli:
