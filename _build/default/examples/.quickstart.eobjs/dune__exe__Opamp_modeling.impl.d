examples/opamp_modeling.ml: Array Circuit Float List Polybasis Printf Randkit Rsm
