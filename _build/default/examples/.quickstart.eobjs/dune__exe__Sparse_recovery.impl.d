examples/sparse_recovery.ml: Array Fun Linalg List Mat Printf Randkit Rsm
