examples/worst_case.ml: Array Circuit List Polybasis Printf Randkit Rsm Stat String
