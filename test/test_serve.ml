(* Serving engine: compiled instruction tapes, the streaming yield
   estimator and the tape registry.

   The contracts under test are bitwise, not approximate: a compiled
   tape must reproduce Model.predict_point bit for bit on every model,
   basis and point, and the streamed estimator must not change a single
   result bit when the domain count changes. *)

open Test_util

(* Random sparse models over random quadratic/total-degree bases. *)
let model_gen =
  QCheck.Gen.(
    let* n = int_range 1 8 in
    let* degree = int_range 1 3 in
    let basis =
      if degree <= 2 then Polybasis.Basis.quadratic n
      else Polybasis.Basis.total_degree n degree
    in
    let m = Polybasis.Basis.size basis in
    let* p = int_range 0 (min 12 m) in
    let* support_list =
      if p = 0 then return []
      else
        let* idx = list_repeat p (int_range 0 (m - 1)) in
        return (List.sort_uniq compare idx)
    in
    let support = Array.of_list support_list in
    let* coeffs =
      array_repeat (Array.length support) (float_range (-2.) 2.)
    in
    let model = Rsm.Model.make ~basis_size:m ~support ~coeffs in
    let* seed = int_range 1 1_000_000 in
    return (model, basis, seed))

let arbitrary_model =
  QCheck.make model_gen ~print:(fun (model, basis, seed) ->
      Printf.sprintf "nnz=%d dim=%d M=%d seed=%d" (Rsm.Model.nnz model)
        (Polybasis.Basis.dim basis)
        (Polybasis.Basis.size basis)
        seed)

let random_points rng basis k =
  Array.init k (fun _ ->
      Randkit.Gaussian.vector rng (Polybasis.Basis.dim basis))

let eval_suite =
  [
    qtest ~count:200 "compiled tape bitwise == predict_point" arbitrary_model
      (fun (model, basis, seed) ->
        let tape = Serve.Eval.compile model basis in
        let rng = Randkit.Prng.create seed in
        let pts = random_points rng basis 20 in
        Array.for_all
          (fun p ->
            Serve.Eval.eval_point tape p = Rsm.Model.predict_point model basis p)
          pts);
    qtest ~count:100 "eval_batch bitwise == scalar, any block" arbitrary_model
      (fun (model, basis, seed) ->
        let tape = Serve.Eval.compile model basis in
        let rng = Randkit.Prng.create seed in
        let pts = random_points rng basis 37 in
        let scalar = Array.map (Serve.Eval.eval_point tape) pts in
        List.for_all
          (fun block -> Serve.Eval.eval_batch ~block tape pts = scalar)
          [ 1; 3; 37; 256 ]);
    qtest ~count:50 "eval_batch bitwise identical over a pool" arbitrary_model
      (fun (model, basis, seed) ->
        let tape = Serve.Eval.compile model basis in
        let rng = Randkit.Prng.create seed in
        let pts = random_points rng basis 50 in
        let seq = Serve.Eval.eval_batch tape pts in
        List.for_all
          (fun domains ->
            Parallel.Pool.with_pool ~domains (fun pool ->
                Serve.Eval.eval_batch ~pool ~block:8 tape pts = seq))
          [ 1; 2; 4 ]);
    case "empty model evaluates to 0 everywhere" (fun () ->
        let basis = Polybasis.Basis.quadratic 4 in
        let model =
          Rsm.Model.make
            ~basis_size:(Polybasis.Basis.size basis)
            ~support:[||] ~coeffs:[||]
        in
        let tape = Serve.Eval.compile model basis in
        check_int "nnz" 0 (Serve.Eval.nnz tape);
        check_int "vars" 0 (Serve.Eval.vars_touched tape);
        check_int "max degree" 0 (Serve.Eval.max_degree tape);
        let p = Array.make 4 1.5 in
        check_float "value" 0. (Serve.Eval.eval_point tape p);
        check_bool "batch" true
          (Serve.Eval.eval_batch tape [| p; p |] = [| 0.; 0. |]));
    case "degree-0 (constant-only) model" (fun () ->
        let basis = Polybasis.Basis.quadratic 3 in
        let model =
          Rsm.Model.make
            ~basis_size:(Polybasis.Basis.size basis)
            ~support:[| 0 |] ~coeffs:[| 2.5 |]
        in
        let tape = Serve.Eval.compile model basis in
        check_int "vars" 0 (Serve.Eval.vars_touched tape);
        check_int "tape length" 0 (Serve.Eval.tape_length tape);
        let pts = random_points (rng ()) basis 5 in
        Array.iter
          (fun p -> check_float "constant" 2.5 (Serve.Eval.eval_point tape p))
          pts;
        check_bool "batch" true
          (Serve.Eval.eval_batch tape pts = Array.make 5 2.5));
    case "compile rejects basis-size disagreement" (fun () ->
        let basis = Polybasis.Basis.quadratic 4 in
        let model =
          Rsm.Model.make ~basis_size:7 ~support:[| 1 |] ~coeffs:[| 1. |]
        in
        check_raises_invalid "wrong basis" (fun () ->
            Serve.Eval.compile model basis));
    case "eval rejects wrong point dimension" (fun () ->
        let basis = Polybasis.Basis.quadratic 4 in
        let model =
          Rsm.Model.make
            ~basis_size:(Polybasis.Basis.size basis)
            ~support:[| 1 |] ~coeffs:[| 1. |]
        in
        let tape = Serve.Eval.compile model basis in
        check_raises_invalid "short point" (fun () ->
            Serve.Eval.eval_point tape [| 1.; 2. |]));
  ]

(* A fixed mid-size model shared by the yield and registry tests. *)
let fixture () =
  let basis = Polybasis.Basis.quadratic 10 in
  let m = Polybasis.Basis.size basis in
  let g = Randkit.Prng.create 99 in
  let support =
    Randkit.Sampling.subsample g (Array.init m Fun.id) 15
  in
  Array.sort compare support;
  let coeffs = Array.map (fun _ -> Randkit.Gaussian.sample g) support in
  let model = Rsm.Model.make ~basis_size:m ~support ~coeffs in
  (model, basis, Serve.Eval.compile model basis)

let yield_suite =
  [
    case "Yield.monte_carlo ?eval compiled == naive (bitwise)" (fun () ->
        let model, basis, tape = fixture () in
        let spec = Rsm.Yield.spec_both ~lower:(-1.) ~upper:1. in
        let naive =
          Rsm.Yield.monte_carlo ~samples:2000 model basis
            (Randkit.Prng.create 7) spec
        in
        let compiled =
          Rsm.Yield.monte_carlo ~samples:2000
            ~eval:(Serve.Eval.evaluator tape) model basis
            (Randkit.Prng.create 7) spec
        in
        check_bool "same estimate" true (naive = compiled));
    case "streamed estimate bitwise identical at 1/2/4 domains" (fun () ->
        let _, _, tape = fixture () in
        let spec = Rsm.Yield.spec_both ~lower:(-1.) ~upper:1. in
        let at domains =
          Parallel.Pool.with_pool ~domains (fun pool ->
              Serve.Stream.estimate ~pool ~batch:128 ~samples:3000 tape
                (Randkit.Prng.create 13) spec)
        in
        let e1 = at 1 in
        check_bool "2 domains" true (at 2 = e1);
        check_bool "4 domains" true (at 4 = e1);
        check_int "pass+fail=n" e1.Serve.Stream.samples 3000);
    case "streamed values bitwise identical at 1/2/4 domains" (fun () ->
        let _, _, tape = fixture () in
        let at domains =
          Parallel.Pool.with_pool ~domains (fun pool ->
              Serve.Stream.values ~pool ~batch:100 ~samples:1050 tape
                (Randkit.Prng.create 17))
        in
        let v1 = at 1 in
        check_bool "2 domains" true (at 2 = v1);
        check_bool "4 domains" true (at 4 = v1));
    case "estimate agrees with naive MC within sampling error" (fun () ->
        let model, basis, tape = fixture () in
        let spec = Rsm.Yield.spec_both ~lower:(-2.) ~upper:2. in
        let e =
          Serve.Stream.estimate ~samples:20_000 tape (Randkit.Prng.create 19)
            spec
        in
        let y, _ =
          Rsm.Yield.monte_carlo ~samples:20_000 model basis
            (Randkit.Prng.create 23) spec
        in
        check_float ~eps:0.02 "yield" y e.Serve.Stream.yield;
        check_bool "se sane" true
          (e.Serve.Stream.std_error > 0. && e.Serve.Stream.std_error < 0.02));
    case "estimate rejects bad arguments" (fun () ->
        let _, _, tape = fixture () in
        let spec = Rsm.Yield.spec_min 0. in
        check_raises_invalid "samples" (fun () ->
            Serve.Stream.estimate ~samples:0 tape (rng ()) spec);
        check_raises_invalid "batch" (fun () ->
            Serve.Stream.estimate ~batch:0 ~samples:10 tape (rng ()) spec));
  ]

let registry_suite =
  let save_tmp model name =
    let path = Filename.concat (Filename.get_temp_dir_name ()) name in
    Rsm.Serialize.save path model;
    path
  in
  let small_model basis j c =
    Rsm.Model.make
      ~basis_size:(Polybasis.Basis.size basis)
      ~support:[| j |] ~coeffs:[| c |]
  in
  [
    case "of_model caches: second lookup is a hit" (fun () ->
        let model, basis, _ = fixture () in
        let reg = Serve.Registry.create basis in
        let e1 = Serve.Registry.of_model reg model in
        let e2 = Serve.Registry.of_model reg model in
        check_bool "same tape" true (e1.Serve.Registry.tape == e2.Serve.Registry.tape);
        let s = Serve.Registry.stats reg in
        check_int "hits" 1 s.Serve.Registry.hits;
        check_int "misses" 1 s.Serve.Registry.misses;
        check_int "size" 1 (Serve.Registry.size reg));
    case "LRU eviction drops the least recently used" (fun () ->
        let basis = Polybasis.Basis.quadratic 10 in
        let reg = Serve.Registry.create ~capacity:2 basis in
        let m1 = small_model basis 1 1. in
        let m2 = small_model basis 2 1. in
        let m3 = small_model basis 3 1. in
        let e1 = Serve.Registry.of_model reg m1 in
        let _ = Serve.Registry.of_model reg m2 in
        (* Touch m1 so m2 becomes the LRU, then overflow with m3. *)
        let _ = Serve.Registry.of_model reg m1 in
        let _ = Serve.Registry.of_model reg m3 in
        check_int "size stays at capacity" 2 (Serve.Registry.size reg);
        check_bool "m1 resident" true
          (Serve.Registry.mem reg e1.Serve.Registry.digest);
        check_bool "m2 evicted" false
          (Serve.Registry.mem reg (Rsm.Serialize.digest m2));
        let s = Serve.Registry.stats reg in
        check_int "evictions" 1 s.Serve.Registry.evictions;
        check_int "misses" 3 s.Serve.Registry.misses);
    case "load digests file bytes and caches" (fun () ->
        let model, basis, _ = fixture () in
        let path = save_tmp model "serve_reg_load.rsm" in
        let reg = Serve.Registry.create basis in
        (match Serve.Registry.load reg path with
        | Error e -> Alcotest.failf "load failed: %s" e
        | Ok e ->
            check_bool "predicts" true
              (Serve.Eval.eval_point e.Serve.Registry.tape
                 (Array.make (Polybasis.Basis.dim basis) 0.5)
              = Rsm.Model.predict_point model basis
                  (Array.make (Polybasis.Basis.dim basis) 0.5)));
        (match Serve.Registry.load reg path with
        | Error e -> Alcotest.failf "reload failed: %s" e
        | Ok _ -> ());
        let s = Serve.Registry.stats reg in
        check_int "one parse+compile only" 1 s.Serve.Registry.misses;
        check_int "second load hits" 1 s.Serve.Registry.hits;
        check_int "no rejections" 0 s.Serve.Registry.rejected;
        Sys.remove path);
    case "load rejects a digest mismatch" (fun () ->
        let model, basis, _ = fixture () in
        let path = save_tmp model "serve_reg_expect.rsm" in
        let reg = Serve.Registry.create basis in
        (match Serve.Registry.load ~expect:1234L reg path with
        | Ok _ -> Alcotest.fail "expected a digest-mismatch rejection"
        | Error msg ->
            check_bool "mentions mismatch" true
              (String.length msg > 0
              && String.sub msg 0 15 = "digest mismatch"));
        check_int "nothing cached" 0 (Serve.Registry.size reg);
        let s = Serve.Registry.stats reg in
        check_int "rejection counted" 1 s.Serve.Registry.rejected;
        check_int "rejection is not a miss" 0 s.Serve.Registry.misses;
        let good = Rsm.Serialize.digest model in
        (match Serve.Registry.load ~expect:good reg path with
        | Ok e -> check_bool "digest echoed" true (e.Serve.Registry.digest = good)
        | Error e -> Alcotest.failf "pinned load failed: %s" e);
        let s = Serve.Registry.stats reg in
        check_int "pinned load is the only miss" 1 s.Serve.Registry.misses;
        check_int "rejected unchanged by success" 1 s.Serve.Registry.rejected;
        Sys.remove path);
    case "load reports IO and parse failures as Error" (fun () ->
        let basis = Polybasis.Basis.quadratic 10 in
        let reg = Serve.Registry.create basis in
        (match Serve.Registry.load reg "/nonexistent/model.rsm" with
        | Ok _ -> Alcotest.fail "expected IO error"
        | Error _ -> ());
        let path =
          Filename.concat (Filename.get_temp_dir_name ()) "serve_reg_bad.rsm"
        in
        let oc = open_out path in
        output_string oc "not a model\n";
        close_out oc;
        (match Serve.Registry.load reg path with
        | Ok _ -> Alcotest.fail "expected parse error"
        | Error _ -> ());
        let s = Serve.Registry.stats reg in
        check_int "both failures rejected" 2 s.Serve.Registry.rejected;
        check_int "no misses from failures" 0 s.Serve.Registry.misses;
        check_int "nothing resident" 0 (Serve.Registry.size reg);
        Sys.remove path);
    case "load rejects a model of the wrong basis size" (fun () ->
        let model, _, _ = fixture () in
        let path = save_tmp model "serve_reg_wrong_basis.rsm" in
        let reg = Serve.Registry.create (Polybasis.Basis.quadratic 3) in
        (match Serve.Registry.load reg path with
        | Ok _ -> Alcotest.fail "expected basis-size rejection"
        | Error _ -> ());
        (* A failed compile must leave no partially-constructed tape
           resident: size, recency and the hit/miss counters are exactly
           as if the call never happened. *)
        check_int "nothing resident after reject" 0 (Serve.Registry.size reg);
        check_bool "digest not resident" false
          (Serve.Registry.mem reg (Rsm.Serialize.digest model));
        let s = Serve.Registry.stats reg in
        check_int "compile failure rejected" 1 s.Serve.Registry.rejected;
        check_int "compile failure is not a miss" 0 s.Serve.Registry.misses;
        Sys.remove path);
    case "create rejects non-positive capacity" (fun () ->
        check_raises_invalid "capacity 0" (fun () ->
            ignore
              (Serve.Registry.create ~capacity:0 (Polybasis.Basis.quadratic 2))));
    case "digest is stable across serialize round-trips" (fun () ->
        let model, _, _ = fixture () in
        let d1 = Rsm.Serialize.digest model in
        match Rsm.Serialize.of_string (Rsm.Serialize.to_string model) with
        | Error e -> Alcotest.failf "round-trip failed: %s" e
        | Ok model' -> check_bool "same digest" true (Rsm.Serialize.digest model' = d1));
  ]

let suite =
  ("serve", eval_suite @ yield_suite @ registry_suite)
