(* The matrix-free design provider: every kernel must return the same
   bits whether the design matrix is materialized (Dense) or generated
   on demand from Hermite tables (Streamed), at every domain count. *)
open Test_util
module P = Polybasis.Design.Provider

let pool_counts = [ 1; 2; 4 ]

let with_pools f = List.map (fun d -> Parallel.Pool.with_pool ~domains:d f) pool_counts

let all_equal msg = function
  | [] | [ _ ] -> ()
  | ref :: rest ->
      List.iteri
        (fun i x ->
          check_bool
            (Printf.sprintf "%s: domains=%d equals domains=1" msg
               (List.nth pool_counts (i + 1)))
            true (x = ref))
        rest

(* A random small problem: quadratic basis most of the time, a degree-3
   basis sometimes so that Many-factor terms and the order-3 Hermite
   recurrence are exercised. *)
let random_setting seed =
  let rng = Randkit.Prng.create seed in
  let dim = 3 + Randkit.Prng.int rng 3 in
  let basis =
    if Randkit.Prng.int rng 3 = 0 then Polybasis.Basis.total_degree dim 3
    else Polybasis.Basis.quadratic dim
  in
  let k = 15 + Randkit.Prng.int rng 20 in
  let pts = Array.init k (fun _ -> Randkit.Gaussian.vector rng dim) in
  let g = Parallel.Pool.with_pool ~domains:1 (fun pool ->
      Polybasis.Design.matrix_rows ~pool basis pts)
  in
  (rng, basis, pts, g)

(* --- entry-level equality ------------------------------------------ *)

let prop_to_dense_bitwise seed =
  let _, basis, pts, g = random_setting seed in
  let src = P.streamed basis pts in
  let dense_arrays =
    with_pools (fun pool -> Linalg.Mat.to_arrays (P.to_dense ~pool src))
  in
  all_equal "streamed to_dense bits" dense_arrays;
  check_bool "streamed to_dense == matrix_rows" true
    (Linalg.Mat.to_arrays g = List.hd dense_arrays);
  true

let prop_columns_bitwise seed =
  let rng, basis, pts, g = random_setting seed in
  let src = P.streamed basis pts in
  let m = P.cols src in
  for _ = 1 to 8 do
    let j = Randkit.Prng.int rng m in
    check_bool "column == Mat.col" true (P.column src j = Linalg.Mat.col g j)
  done;
  let cache = P.Cache.create src in
  let j = Randkit.Prng.int rng m in
  check_bool "Cache.column == Mat.col" true
    (P.Cache.column cache j = Linalg.Mat.col g j);
  true

let prop_sweeps_bitwise seed =
  let rng, basis, pts, g = random_setting seed in
  let src_s = P.streamed basis pts in
  let src_d = P.dense g in
  let k = P.rows src_s and m = P.cols src_s in
  let r = Randkit.Gaussian.vector rng k in
  let skip = Array.init m (fun _ -> Randkit.Prng.int rng 4 = 0) in
  let sweeps =
    with_pools (fun pool ->
        ( Rsm.Corr_sweep.gram_tr ~pool src_d r,
          Rsm.Corr_sweep.gram_tr ~pool src_s r,
          Rsm.Corr_sweep.argmax_abs ~pool ~skip src_d r,
          Rsm.Corr_sweep.argmax_abs ~pool ~skip src_s r ))
  in
  all_equal "sweep bits across domains" sweeps;
  List.iter
    (fun (gd, gs, ad, as_) ->
      check_bool "gram_tr dense == streamed" true (gd = gs);
      check_bool "argmax dense == streamed" true (ad = as_))
    sweeps;
  true

let prop_column_norms_bitwise seed =
  let _, basis, pts, g = random_setting seed in
  let src_s = P.streamed basis pts in
  let norms =
    with_pools (fun pool ->
        ( Polybasis.Design.column_norms ~pool g,
          P.column_norms ~pool (P.dense g),
          P.column_norms ~pool src_s ))
  in
  all_equal "column norm bits across domains" norms;
  List.iter
    (fun (a, b, c) ->
      check_bool "pooled matrix norms == dense provider" true (a = b);
      check_bool "dense norms == streamed norms" true (a = c))
    norms;
  true

(* --- solver paths --------------------------------------------------- *)

let sparse_response rng src =
  let k = P.rows src and m = P.cols src in
  let f = Array.init k (fun _ -> 0.05 *. Randkit.Gaussian.sample rng) in
  List.iter
    (fun j ->
      let col = P.column src j in
      for i = 0 to k - 1 do
        f.(i) <- f.(i) +. col.(i)
      done)
    [ 1 mod m; m / 2; m - 1 ];
  f

let model_bits (m : Rsm.Model.t) = (m.Rsm.Model.support, Array.copy m.Rsm.Model.coeffs)

let prop_omp_dense_eq_streamed seed =
  let rng, basis, pts, g = random_setting seed in
  let src_s = P.streamed basis pts in
  let f = sparse_response rng src_s in
  let lambda = min 6 (min (P.rows src_s) (P.cols src_s)) in
  let fits =
    with_pools (fun pool ->
        ( model_bits (Rsm.Omp.fit ~pool g f ~lambda),
          model_bits (Rsm.Omp.fit_p ~pool src_s f ~lambda) ))
  in
  all_equal "OMP bits across domains" fits;
  List.iter
    (fun (d, s) -> check_bool "OMP dense == streamed" true (d = s))
    fits;
  true

let prop_star_dense_eq_streamed seed =
  let rng, basis, pts, g = random_setting seed in
  let src_s = P.streamed basis pts in
  let f = sparse_response rng src_s in
  let lambda = min 6 (P.cols src_s) in
  let fits =
    with_pools (fun pool ->
        ( model_bits (Rsm.Star.fit ~pool g f ~lambda),
          model_bits (Rsm.Star.fit_p ~pool src_s f ~lambda) ))
  in
  all_equal "STAR bits across domains" fits;
  List.iter
    (fun (d, s) -> check_bool "STAR dense == streamed" true (d = s))
    fits;
  true

let prop_lars_dense_eq_streamed seed =
  let rng, basis, pts, g = random_setting seed in
  let src_s = P.streamed basis pts in
  let f = sparse_response rng src_s in
  let lambda = min 5 (min (P.rows src_s) (P.cols src_s)) in
  let fits =
    with_pools (fun pool ->
        ( model_bits (Rsm.Lars.fit ~mode:Rsm.Lars.Lar ~pool g f ~lambda),
          model_bits (Rsm.Lars.fit_p ~mode:Rsm.Lars.Lar ~pool src_s f ~lambda)
        ))
  in
  all_equal "LAR bits across domains" fits;
  List.iter
    (fun (d, s) -> check_bool "LAR dense == streamed" true (d = s))
    fits;
  true

let prop_cv_dense_eq_streamed seed =
  let rng, basis, pts, g = random_setting seed in
  let src_s = P.streamed basis pts in
  let f = sparse_response rng src_s in
  let results =
    with_pools (fun pool ->
        let rd =
          Rsm.Select.omp ~pool (Randkit.Prng.create (seed + 1)) ~max_lambda:5 g
            f
        in
        let rs =
          Rsm.Select.omp_p ~pool
            (Randkit.Prng.create (seed + 1))
            ~max_lambda:5 src_s f
        in
        ( (rd.Rsm.Select.lambda, Array.copy rd.Rsm.Select.curve,
           model_bits rd.Rsm.Select.model),
          (rs.Rsm.Select.lambda, Array.copy rs.Rsm.Select.curve,
           model_bits rs.Rsm.Select.model) ))
  in
  all_equal "CV bits across domains" results;
  List.iter
    (fun (d, s) -> check_bool "CV dense == streamed" true (d = s))
    results;
  true

let prop_select_rows_bitwise seed =
  let rng, basis, pts, g = random_setting seed in
  let src_s = P.streamed basis pts in
  let k = P.rows src_s in
  let idx =
    Array.init (max 1 (k / 2)) (fun _ -> Randkit.Prng.int rng k)
  in
  let sub_d = Linalg.Mat.select_rows g idx in
  let sub_s = P.select_rows src_s idx in
  check_bool "select_rows streamed == dense" true
    (Linalg.Mat.to_arrays sub_d
    = Linalg.Mat.to_arrays
        (Parallel.Pool.with_pool ~domains:1 (fun pool ->
             P.to_dense ~pool sub_s)));
  true

(* --- small deterministic cases -------------------------------------- *)

let test_residual_cols_matches_subset () =
  let rng = rng () in
  let g = Randkit.Gaussian.matrix rng 12 7 in
  let b = Randkit.Gaussian.vector rng 12 in
  let idx = [| 1; 4; 6 |] in
  let x = [| 0.7; 0.; -1.3 |] in
  let cols = Array.map (Linalg.Mat.col g) idx in
  check_bool "residual_cols == residual_subset" true
    (Linalg.Lstsq.residual_cols cols x b
    = Linalg.Lstsq.residual_subset g idx x b)

let test_col_col_dot_matches_vec_dot () =
  let rng = rng () in
  let g = Randkit.Gaussian.matrix rng 9 5 in
  for i = 0 to 4 do
    for j = 0 to 4 do
      check_bool "Mat.col_col_dot == Vec.dot of cols" true
        (Linalg.Mat.col_col_dot g i j
        = Linalg.Vec.dot (Linalg.Mat.col g i) (Linalg.Mat.col g j))
    done
  done

let test_tile_cols_do_not_change_results () =
  let rng = rng () in
  let dim = 4 in
  let basis = Polybasis.Basis.quadratic dim in
  let pts = Array.init 11 (fun _ -> Randkit.Gaussian.vector rng dim) in
  let r = Randkit.Gaussian.vector rng 11 in
  let reference =
    Parallel.Pool.with_pool ~domains:1 (fun pool ->
        Rsm.Corr_sweep.gram_tr ~pool (P.streamed basis pts) r)
  in
  List.iter
    (fun tile_cols ->
      let src = P.streamed ~tile_cols basis pts in
      check_int "tile_cols recorded" tile_cols (P.tile_cols src);
      let got =
        Parallel.Pool.with_pool ~domains:2 (fun pool ->
            Rsm.Corr_sweep.gram_tr ~pool src r)
      in
      check_bool "sweep independent of tile_cols" true (got = reference))
    [ 1; 3; 7 ]

let test_with_tile_matches_columns () =
  let rng = rng () in
  let dim = 3 in
  let basis = Polybasis.Basis.quadratic dim in
  let pts = Array.init 9 (fun _ -> Randkit.Gaussian.vector rng dim) in
  let src = P.streamed basis pts in
  let k = P.rows src in
  let jlo = 2 and jhi = 6 in
  P.with_tile src ~jlo ~jhi (fun tile ->
      for j = jlo to jhi - 1 do
        let col = P.column src j in
        for i = 0 to k - 1 do
          check_float "tile entry" col.(i) tile.((i * (jhi - jlo)) + j - jlo)
        done
      done)

let test_dim_zero_constant_basis () =
  let basis = Polybasis.Basis.create 0 [| Polybasis.Term.constant |] in
  let pts = Array.init 5 (fun _ -> [||]) in
  let src = P.streamed basis pts in
  check_int "one constant column" 1 (P.cols src);
  check_bool "constant column" true (P.column src 0 = Array.make 5 1.)

let test_validation () =
  let basis = Polybasis.Basis.quadratic 3 in
  let pts = [| [| 1.; 2. |] |] in
  check_raises_invalid "sample dim mismatch" (fun () ->
      P.streamed basis pts);
  check_raises_invalid "tile_cols must be positive" (fun () ->
      P.streamed ~tile_cols:0 basis [| [| 0.; 0.; 0. |] |]);
  let src = P.streamed basis [| [| 0.; 0.; 0. |] |] in
  check_raises_invalid "column out of bounds" (fun () ->
      P.column src (P.cols src));
  check_raises_invalid "select_rows out of bounds" (fun () ->
      P.select_rows src [| 1 |])

let seed_gen = QCheck.int_range 1 10_000

let suite =
  ( "provider",
    [
      case "residual_cols == residual_subset" test_residual_cols_matches_subset;
      case "Mat.col_col_dot == Vec.dot" test_col_col_dot_matches_vec_dot;
      case "tile size does not change results" test_tile_cols_do_not_change_results;
      case "with_tile matches columns" test_with_tile_matches_columns;
      case "dim-0 constant basis" test_dim_zero_constant_basis;
      case "validation errors" test_validation;
      qtest ~count:12 "to_dense: streamed == matrix_rows" seed_gen
        prop_to_dense_bitwise;
      qtest ~count:12 "columns: streamed == dense" seed_gen
        prop_columns_bitwise;
      qtest ~count:12 "sweeps: streamed == dense" seed_gen prop_sweeps_bitwise;
      qtest ~count:12 "column norms: streamed == dense" seed_gen
        prop_column_norms_bitwise;
      qtest ~count:10 "omp: streamed == dense" seed_gen
        prop_omp_dense_eq_streamed;
      qtest ~count:10 "star: streamed == dense" seed_gen
        prop_star_dense_eq_streamed;
      qtest ~count:8 "lar: streamed == dense" seed_gen
        prop_lars_dense_eq_streamed;
      qtest ~count:6 "cv selection: streamed == dense" seed_gen
        prop_cv_dense_eq_streamed;
      qtest ~count:10 "select_rows: streamed == dense" seed_gen
        prop_select_rows_bitwise;
    ] )
