(* Burst-fault resilience: the Markov outage model, adaptive
   backoff/breaker driver, Mahalanobis point screen and quorum-degraded
   fitting — determinism at every domain count throughout. *)
open Test_util
module Simulator = Circuit.Simulator
module Markov = Randkit.Markov
module Retry = Robust.Retry

let pool_counts = [ 1; 2; 4 ]

let small_sim () =
  let amp = Circuit.Opamp.build ~n_parasitics:15 () in
  (Circuit.Opamp.simulator amp Circuit.Opamp.Offset, Circuit.Opamp.dim amp)

let burst_faults =
  Simulator.fault_plan ~rate:0.05
    ~burst:(Simulator.burst_model ~entry:0.04 ~len:12. ())
    ()

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- Markov outage chains ------------------------------------------ *)

let test_markov_states_deterministic () =
  let c = Markov.of_mean_len ~entry:0.05 ~mean_len:10. () in
  let a = Markov.states c ~seed:99 500 in
  let b = Markov.states c ~seed:99 500 in
  check_bool "states are a pure function of (chain, seed, n)" true (a = b);
  check_bool "a different seed gives a different chain" true
    (a <> Markov.states c ~seed:100 500);
  check_float ~eps:1e-12 "mean burst length" 10. (Markov.mean_burst_len c)

let test_markov_windows_consistent () =
  let c = Markov.of_mean_len ~entry:0.05 ~mean_len:8. () in
  let states = Markov.states c ~seed:3 400 in
  let windows = Markov.windows states in
  check_int "window lengths sum to the burst count" (Markov.count states)
    (Array.fold_left (fun acc (_, len) -> acc + len) 0 windows);
  Array.iter
    (fun (start, len) ->
      check_bool "window is maximal on the left" true
        (start = 0 || not states.(start - 1));
      check_bool "window is maximal on the right" true
        (start + len = 400 || not states.(start + len));
      for i = start to start + len - 1 do
        check_bool "window is solid" true states.(i)
      done)
    windows

let test_markov_degenerate_chains () =
  let never = Markov.chain ~entry:0. ~exit:0.5 () in
  check_bool "entry 0 never bursts" true
    (Array.for_all not (Markov.states never ~seed:1 200));
  check_int "no windows" 0 (Array.length (Markov.windows (Array.make 50 false)));
  check_raises_invalid "entry > 1" (fun () -> Markov.chain ~entry:1.5 ~exit:0.5 ());
  check_raises_invalid "mean_len < 1" (fun () ->
      Markov.of_mean_len ~entry:0.1 ~mean_len:0.5 ())

let test_burst_states_of_plan () =
  check_bool "no burst model: all Good" true
    (Array.for_all not (Simulator.burst_states Simulator.no_faults ~k:100));
  let states = Simulator.burst_states burst_faults ~k:2000 in
  check_bool "burst model produces outage windows" true
    (Markov.count states > 0);
  check_bool "pure function of the plan" true
    (states = Simulator.burst_states burst_faults ~k:2000)

(* --- burst-mode injection determinism ------------------------------ *)

let test_burst_run_pool_parity () =
  let sim, _ = small_sim () in
  let d0, r0 =
    Simulator.run_robust ~faults:burst_faults sim (Randkit.Prng.create 7)
      ~k:300
  in
  check_bool "bursts intersect the run" true (r0.Simulator.burst_windows > 0);
  check_bool "burst samples counted" true
    (r0.Simulator.burst_samples >= r0.Simulator.burst_windows);
  check_bool "faults attributed to bursts" true
    (r0.Simulator.burst_faults > 0);
  check_bool "summary mentions the windows" true
    (contains (Simulator.report_summary r0) "burst window");
  List.iter
    (fun domains ->
      Parallel.Pool.with_pool ~domains (fun pool ->
          let d, r =
            Simulator.run_robust ~pool ~faults:burst_faults sim
              (Randkit.Prng.create 7) ~k:300
          in
          check_bool
            (Printf.sprintf "dataset bitwise (domains=%d)" domains)
            true
            (d.Simulator.points = d0.Simulator.points
            && d.Simulator.values = d0.Simulator.values);
          check_bool
            (Printf.sprintf "report identical (domains=%d)" domains)
            true (r = r0)))
    pool_counts

let test_burst_off_is_bitwise_legacy () =
  (* A plan without a burst model must behave exactly as before the
     burst layer existed: same draws, same dataset, same report. *)
  let sim, _ = small_sim () in
  let plain = Simulator.fault_plan ~rate:0.10 ~outlier_scale:500. () in
  let d, r = Simulator.run_robust ~faults:plain sim (Randkit.Prng.create 5) ~k:150 in
  check_int "no burst windows" 0 r.Simulator.burst_windows;
  check_int "no burst samples" 0 r.Simulator.burst_samples;
  check_int "no burst faults" 0 r.Simulator.burst_faults;
  check_int "no breaker trips" 0 r.Simulator.breaker_trips;
  check_bool "summary stays burst-free" true
    (not (contains (Simulator.report_summary r) "burst"));
  check_bool "dataset non-empty" true (Simulator.dataset_size d > 0)

(* --- adaptive retry: backoff, budget, breaker ---------------------- *)

let test_retry_clean_matches_run () =
  let sim, _ = small_sim () in
  let d = Simulator.run sim (Randkit.Prng.create 42) ~k:80 in
  let d', report =
    Retry.run (Retry.policy ()) sim (Randkit.Prng.create 42) ~k:80
  in
  check_bool "clean adaptive run == run bitwise" true
    (d.Simulator.points = d'.Simulator.points
    && d.Simulator.values = d'.Simulator.values);
  check_int "all delivered" 80 report.Retry.run.Simulator.delivered;
  check_int "no events" 0 (Array.length report.Retry.events);
  check_int "no trips" 0 report.Retry.run.Simulator.breaker_trips

let test_retry_pool_parity () =
  let sim, _ = small_sim () in
  let policy = Retry.policy ~breaker_threshold:4 () in
  let d0, r0 =
    Retry.run ~faults:burst_faults policy sim (Randkit.Prng.create 13) ~k:250
  in
  List.iter
    (fun domains ->
      Parallel.Pool.with_pool ~domains (fun pool ->
          let d, r =
            Retry.run ~pool ~faults:burst_faults policy sim
              (Randkit.Prng.create 13) ~k:250
          in
          check_bool
            (Printf.sprintf "adaptive dataset bitwise (domains=%d)" domains)
            true
            (d.Simulator.points = d0.Simulator.points
            && d.Simulator.values = d0.Simulator.values);
          check_bool
            (Printf.sprintf "adaptive report identical (domains=%d)" domains)
            true (r = r0)))
    pool_counts

let test_breaker_trips_and_recovers () =
  (* A hard outage window: every attempt inside it fails, so the breaker
     must trip, fail fast through the window, and close again on the
     other side — delivering the post-burst samples. *)
  let sim, _ = small_sim () in
  let faults =
    Simulator.fault_plan ~rate:0.
      ~burst:(Simulator.burst_model ~entry:0.05 ~len:25. ~rate:1. ())
      ()
  in
  let policy = Retry.policy ~max_attempts:3 ~breaker_threshold:3 () in
  let d, r = Retry.run ~faults policy sim (Randkit.Prng.create 21) ~k:300 in
  let run = r.Retry.run in
  check_bool "bursts hit the run" true (run.Simulator.burst_windows > 0);
  check_bool "breaker tripped" true (run.Simulator.breaker_trips > 0);
  let has p = Array.exists p r.Retry.events in
  check_bool "a Tripped event was logged" true
    (has (function Retry.Tripped _ -> true | _ -> false));
  check_bool "fast-fails while open" true
    (has (function Retry.Fast_fail _ -> true | _ -> false));
  check_bool "breaker closed again" true
    (has (function Retry.Closed _ -> true | _ -> false));
  check_int "delivered + failed = requested" 300
    (run.Simulator.delivered + Array.length run.Simulator.failed);
  check_int "dataset matches the report" run.Simulator.delivered
    (Simulator.dataset_size d);
  (* Fail-fast means abandoned burst samples each burned one attempt,
     not the full retry allowance: strictly cheaper than fixed retry. *)
  let _, fixed =
    Simulator.run_robust ~faults
      ~retry:(Simulator.retry_policy ~max_attempts:3 ())
      sim (Randkit.Prng.create 21) ~k:300
  in
  check_bool "adaptive charges less accounted time than fixed retry" true
    (run.Simulator.accounted_extra_seconds
    < fixed.Simulator.accounted_extra_seconds);
  Array.iter
    (fun e ->
      check_bool "events render" true (String.length (Retry.event_to_string e) > 0))
    r.Retry.events

let test_retry_budget_exhaustion () =
  let sim, _ = small_sim () in
  let faults =
    Simulator.fault_plan ~rate:0.4 ~mix:[| (Simulator.Transient, 1.) |] ()
  in
  let policy = Retry.policy ~max_attempts:4 ~attempt_budget:5 () in
  let _, r = Retry.run ~faults policy sim (Randkit.Prng.create 31) ~k:200 in
  check_int "budget caps granted retries" 5 r.Retry.retries_granted;
  check_bool "denials recorded" true (r.Retry.retries_denied > 0);
  check_bool "exhaustion logged once" true
    (Array.length
       (Array.of_list
          (List.filter
             (function Retry.Budget_exhausted _ -> true | _ -> false)
             (Array.to_list r.Retry.events)))
    = 1)

let test_retry_policy_validation () =
  check_raises_invalid "zero attempts" (fun () -> Retry.policy ~max_attempts:0 ());
  check_raises_invalid "jitter 1" (fun () -> Retry.policy ~jitter:1. ());
  check_raises_invalid "negative budget" (fun () ->
      Retry.policy ~attempt_budget:(-1) ());
  check_raises_invalid "negative cooldown" (fun () -> Retry.policy ~cooldown:(-2) ());
  check_raises_invalid "k = 0" (fun () ->
      let sim, _ = small_sim () in
      Retry.run (Retry.policy ()) sim (Randkit.Prng.create 1) ~k:0)

(* --- Mahalanobis point screen -------------------------------------- *)

let gaussian_dataset ?(dim = 3) ~k seed =
  let g = Randkit.Prng.create seed in
  {
    Simulator.points = Array.init k (fun _ -> Randkit.Gaussian.vector g dim);
    values = Array.init k (fun _ -> Randkit.Gaussian.sample g);
  }

let mahal_ok ?confidence d =
  match Robust.Screen.mahalanobis ?confidence d with
  | Ok r -> r
  | Error e -> Alcotest.fail ("mahalanobis failed: " ^ Robust.Error.to_string e)

let test_mahalanobis_flags_far_point () =
  let d = gaussian_dataset ~k:80 11 in
  (* A corrupted coordinate vector whose response is unremarkable — the
     response screen cannot see it, the point screen must. *)
  d.Simulator.points.(17) <- [| 40.; -35.; 50. |];
  let kept, report = mahal_ok d in
  let far =
    Array.exists
      (fun (i, why) ->
        i = 17
        && match why with Robust.Screen.Far_point dist ->
             dist > report.Robust.Screen.p_threshold
           | _ -> false)
      report.Robust.Screen.p_dropped
  in
  check_bool "the planted far point is dropped with its distance" true far;
  check_bool "the bulk survives" true (Simulator.dataset_size kept >= 75);
  check_bool "summary renders" true
    (contains (Robust.Screen.point_report_summary report) "point screen")

let test_mahalanobis_clean_bulk_survives () =
  let d = gaussian_dataset ~k:120 13 in
  let kept, report = mahal_ok d in
  (* At 99.9% confidence a clean Gaussian batch loses at most a row or
     two; the exact count is deterministic for the seed. *)
  check_bool "nearly everything kept" true
    (Simulator.dataset_size kept >= 118);
  check_bool "shrinkage from the ladder" true
    (Array.exists
       (fun g -> g = report.Robust.Screen.p_shrinkage)
       [| 0.05; 0.1; 0.2; 0.4; 0.8; 1.0 |])

let test_mahalanobis_degenerate_and_errors () =
  let two = gaussian_dataset ~k:2 17 in
  let kept, report = mahal_ok two in
  check_int "two rows stand down to finiteness-only" 2
    (Simulator.dataset_size kept);
  check_float ~eps:0. "degenerate shrinkage reported" 1.0
    report.Robust.Screen.p_shrinkage;
  let bad =
    {
      Simulator.points = [| [| Float.nan; 0. |]; [| 0.; Float.infinity |] |];
      values = [| 1.; 2. |];
    }
  in
  (match Robust.Screen.mahalanobis bad with
  | Error (Robust.Error.Simulation _) -> ()
  | Error e -> Alcotest.failf "wrong category: %s" (Robust.Error.to_string e)
  | Ok _ -> Alcotest.fail "all-non-finite points must not screen Ok");
  check_raises_invalid "confidence 1" (fun () ->
      Robust.Screen.mahalanobis ~confidence:1. (gaussian_dataset ~k:10 1));
  check_raises_invalid "empty dataset" (fun () ->
      Robust.Screen.mahalanobis { Simulator.points = [||]; values = [||] })

let test_chi2_quantile_sanity () =
  (* Wilson–Hilferty against table values. *)
  check_float ~eps:0.2 "chi2_10(0.95)" 18.307
    (Robust.Screen.chi2_quantile ~dof:10 0.95);
  check_float ~eps:0.3 "chi2_20(0.999)" 45.315
    (Robust.Screen.chi2_quantile ~dof:20 0.999);
  check_bool "monotone in p" true
    (Robust.Screen.chi2_quantile ~dof:5 0.99
    > Robust.Screen.chi2_quantile ~dof:5 0.9)

let test_chi2_quantile_low_dof_exact () =
  (* Regression for the Wilson–Hilferty cube at dof 1–2: it was off by
     several percent there (−3.6% at dof 1, p = 0.999), skewing the
     factor-screen cut for 1–2 variable designs. The closed forms must
     now match reference quantiles to the inverse-normal's accuracy. *)
  let q = Robust.Screen.chi2_quantile in
  check_float ~eps:1e-6 "chi2_1(0.95)" 3.8414588206941254 (q ~dof:1 0.95);
  check_float ~eps:1e-6 "chi2_1(0.99)" 6.6348966010212145 (q ~dof:1 0.99);
  check_float ~eps:1e-6 "chi2_1(0.999)" 10.827566170662733 (q ~dof:1 0.999);
  check_float ~eps:1e-9 "chi2_2(0.95)" 5.991464547107979 (q ~dof:2 0.95);
  check_float ~eps:1e-9 "chi2_2(0.99)" 9.210340371976182 (q ~dof:2 0.99);
  check_float ~eps:1e-9 "chi2_2(0.999)" 13.815510557964274 (q ~dof:2 0.999);
  (* dof 2 closed form is exactly −2·ln(1−p); p = 0.75 keeps 1−p exact
     in binary so the comparison can be bitwise. *)
  check_float ~eps:0. "chi2_2 closed form" (-2. *. log 0.25) (q ~dof:2 0.75);
  (* dof >= 3 still goes through Wilson–Hilferty (within a few permil of
     the reference value, but not exact). *)
  check_float ~eps:0.05 "chi2_3(0.95) approx" 7.814727903251179
    (q ~dof:3 0.95);
  check_bool "dof 3 stays Wilson-Hilferty" true
    (Float.abs (q ~dof:3 0.95 -. 7.814727903251179) > 1e-9)

let test_response_screen_two_sample_standdown () =
  (* Two rows an ocean apart: their MAD is |v1-v2|/2, putting each a
     constant 0.674 robust sigma from the midpoint — the old screen
     silently passed everything while appearing to have run. It must
     stand down with the zero-spread verdict instead. *)
  let d =
    {
      Simulator.points = [| [| 0.1 |]; [| 0.2 |] |];
      values = [| 0.; 1e9 |];
    }
  in
  (match Robust.Screen.screen d with
  | Ok (kept, report) ->
      check_float ~eps:0. "spread reports the stand-down" 0.
        report.Robust.Screen.spread;
      check_int "both rows kept" 2 (Simulator.dataset_size kept);
      check_int "nothing silently dropped" 0
        (Array.length report.Robust.Screen.dropped)
  | Error e -> Alcotest.fail ("screen failed: " ^ Robust.Error.to_string e));
  match
    Robust.Screen.screen
      { Simulator.points = [| [| 0.5 |] |]; values = [| 3.25 |] }
  with
  | Ok (_, report) ->
      check_float ~eps:0. "single row also stands down" 0.
        report.Robust.Screen.spread
  | Error e -> Alcotest.fail ("screen failed: " ^ Robust.Error.to_string e)

(* --- quorum-degraded fitting --------------------------------------- *)

let transient_storm =
  Simulator.fault_plan ~rate:0.45 ~mix:[| (Simulator.Transient, 1.) |] ()

let pipeline_cfg ?adaptive ?(quorum = Robust.Pipeline.default_quorum)
    ?(screen_space = Robust.Pipeline.Response) ?(faults = Simulator.no_faults)
    ?(retry = Simulator.no_retry) () =
  match
    Robust.Pipeline.config ~samples:150 ~folds:3 ~max_lambda:5 ~min_samples:10
      ~quorum ~screen_space ~faults ~retry ?adaptive ()
  with
  | Ok cfg -> cfg
  | Error e -> Alcotest.failf "config: %s" (Robust.Error.to_string e)

let test_quorum_shortfall_is_typed () =
  let sim, dim = small_sim () in
  let basis = Polybasis.Basis.constant_linear dim in
  let cfg = pipeline_cfg ~faults:transient_storm ~quorum:0.9 () in
  match Robust.Pipeline.fit cfg sim basis (rng ()) with
  | Error (Robust.Error.Simulation msg) ->
      check_bool "diagnostic names the quorum" true (contains msg "quorum")
  | Error e -> Alcotest.failf "wrong category: %s" (Robust.Error.to_string e)
  | Ok _ -> Alcotest.fail "sub-quorum run must not fit"

let test_degraded_fit_notes_and_roundtrip () =
  let sim, dim = small_sim () in
  let basis = Polybasis.Basis.constant_linear dim in
  let cfg = pipeline_cfg ~faults:transient_storm ~quorum:0.4 () in
  match Robust.Pipeline.fit cfg sim basis (rng ()) with
  | Error e -> Alcotest.failf "fit: %s" (Robust.Error.to_string e)
  | Ok o ->
      let notes = Rsm.Model.notes o.Robust.Pipeline.model in
      let degraded =
        Array.to_list notes
        |> List.filter (fun n -> contains n "degraded: ")
      in
      check_int "exactly one degraded note" 1 (List.length degraded);
      let note = List.hd degraded in
      check_bool "note counts the kept rows" true
        (contains note
           (Printf.sprintf "kept %d of 150"
              (Simulator.dataset_size o.Robust.Pipeline.dataset)));
      check_bool "note is one line" true (not (String.contains note '\n'));
      (* Provenance must survive the model file. *)
      (match
         Rsm.Serialize.of_string
           (Rsm.Serialize.to_string o.Robust.Pipeline.model)
       with
      | Error e -> Alcotest.failf "parse: %s" e
      | Ok m' ->
          check_bool "degraded note round-trips through serialization" true
            (Array.exists (( = ) note) (Rsm.Model.notes m')));
      check_bool "outcome summary carries the note" true
        (contains (Robust.Pipeline.outcome_summary o) "degraded: ")

let test_full_delivery_carries_no_note () =
  let sim, dim = small_sim () in
  let basis = Polybasis.Basis.constant_linear dim in
  let cfg = pipeline_cfg () in
  match Robust.Pipeline.fit cfg sim basis (rng ()) with
  | Error e -> Alcotest.failf "fit: %s" (Robust.Error.to_string e)
  | Ok o ->
      check_bool "no degraded note on a clean run" true
        (not
           (Array.exists
              (fun n -> contains n "degraded")
              (Rsm.Model.notes o.Robust.Pipeline.model)))

let test_pipeline_screen_spaces () =
  let sim, dim = small_sim () in
  let basis = Polybasis.Basis.constant_linear dim in
  let outcome space =
    match
      Robust.Pipeline.fit
        (pipeline_cfg ~screen_space:space ())
        sim basis (rng ())
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "fit: %s" (Robust.Error.to_string e)
  in
  let o = outcome Robust.Pipeline.Both in
  check_bool "Both: response report present" true
    (o.Robust.Pipeline.screen_report <> None);
  check_bool "Both: point report present" true
    (o.Robust.Pipeline.point_report <> None);
  let o = outcome Robust.Pipeline.Factor in
  check_bool "Factor: response report absent" true
    (o.Robust.Pipeline.screen_report = None);
  check_bool "Factor: point report present" true
    (o.Robust.Pipeline.point_report <> None);
  check_bool "parse round-trips" true
    (List.for_all
       (fun s ->
         Robust.Pipeline.screen_space_of_string
           (Robust.Pipeline.screen_space_to_string s)
         = Some s)
       [ Robust.Pipeline.Response; Robust.Pipeline.Factor; Robust.Pipeline.Both ])

let test_pipeline_adaptive_deterministic () =
  let sim, dim = small_sim () in
  let basis = Polybasis.Basis.constant_linear dim in
  let cfg =
    pipeline_cfg ~quorum:0.3
      ~faults:burst_faults
      ~adaptive:(Retry.policy ~breaker_threshold:4 ())
      ()
  in
  let fit () =
    match Robust.Pipeline.fit cfg sim basis (rng ()) with
    | Ok o -> o
    | Error e -> Alcotest.failf "fit: %s" (Robust.Error.to_string e)
  in
  let a = fit () and b = fit () in
  check_bool "adaptive report surfaced" true
    (a.Robust.Pipeline.adaptive_report <> None);
  check_bool "adaptive burst fit is reproducible" true
    (Rsm.Serialize.to_string a.Robust.Pipeline.model
    = Rsm.Serialize.to_string b.Robust.Pipeline.model);
  check_bool "summary shows the adaptive line" true
    (contains (Robust.Pipeline.outcome_summary a) "adaptive retry")

let test_burst_fit_pool_parity () =
  (* The acceptance gate in miniature: a quorate burst-mode CV fit is
     bitwise identical at 1, 2 and 4 domains. *)
  let sim, dim = small_sim () in
  let basis = Polybasis.Basis.constant_linear dim in
  let cfg =
    pipeline_cfg ~quorum:0.3 ~faults:burst_faults
      ~retry:(Simulator.retry_policy ()) ()
  in
  let fit pool =
    match Robust.Pipeline.fit ?pool cfg sim basis (rng ()) with
    | Ok o -> Rsm.Serialize.to_string o.Robust.Pipeline.model
    | Error e -> Alcotest.failf "fit: %s" (Robust.Error.to_string e)
  in
  let reference = fit None in
  List.iter
    (fun domains ->
      Parallel.Pool.with_pool ~domains (fun pool ->
          check_bool
            (Printf.sprintf "burst fit bitwise (domains=%d)" domains)
            true
            (fit (Some pool) = reference)))
    pool_counts

let test_burst_cv_resume_bitwise () =
  (* Killed-then-resumed under burst faults: the training data comes out
     of a bursty delivery, the CV sweep checkpoints per fold, two fold
     files are lost in the "crash", and the resumed sweep must replay
     byte-identically. *)
  let sim, _ = small_sim () in
  let data, report =
    Simulator.run_robust ~faults:burst_faults
      ~retry:(Simulator.retry_policy ())
      sim (Randkit.Prng.create 23) ~k:120
  in
  check_bool "the delivery really was bursty" true
    (report.Simulator.burst_windows > 0);
  let basis =
    Polybasis.Basis.constant_linear (Array.length data.Simulator.points.(0))
  in
  let src =
    Polybasis.Design.Provider.dense
      (Polybasis.Design.matrix_rows basis data.Simulator.points)
  in
  let f = data.Simulator.values in
  let run ?checkpoint ?resume () =
    Rsm.Select.omp_p ?checkpoint ?resume ~folds:4
      (Randkit.Prng.create 77)
      ~max_lambda:5 src f
  in
  let fingerprint (r : Rsm.Select.result) =
    Printf.sprintf "%d|%s" r.Rsm.Select.lambda
      (Rsm.Serialize.to_string r.Rsm.Select.model)
  in
  let full = run () in
  let dir = Filename.temp_file "burst-cv" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun fn -> Sys.remove (Filename.concat dir fn))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let base = Filename.concat dir "cv" in
      ignore (run ~checkpoint:base ());
      Sys.remove (Rsm.Serialize.Checkpoint.Cv.fold_file base 2);
      Sys.remove (Rsm.Serialize.Checkpoint.Cv.fold_file base 3);
      let resumed = run ~checkpoint:base ~resume:true () in
      check_bool "burst-trained sweep resumes bitwise" true
        (fingerprint resumed = fingerprint full))

(* --- qcheck properties --------------------------------------------- *)

let qtest_burst_domain_parity =
  qtest ~count:12 "burst runs bitwise at 1/2/4 domains (qcheck)"
    QCheck.(pair small_nat small_nat)
    (fun (seed0, k0) ->
      let sim, _ = small_sim () in
      let seed = 1 + seed0 and k = 40 + k0 in
      let base =
        Simulator.run_robust ~faults:burst_faults sim
          (Randkit.Prng.create seed) ~k
      in
      List.for_all
        (fun domains ->
          Parallel.Pool.with_pool ~domains (fun pool ->
              Simulator.run_robust ~pool ~faults:burst_faults sim
                (Randkit.Prng.create seed) ~k
              = base))
        [ 2; 4 ])

let qtest_mahalanobis_order_invariant =
  qtest ~count:30 "point-screen verdicts invariant to sample order (qcheck)"
    QCheck.small_nat
    (fun seed0 ->
      let seed = 1 + seed0 in
      let d = gaussian_dataset ~dim:3 ~k:50 seed in
      (* Plant one far point so both verdict classes are exercised. *)
      d.Simulator.points.(seed mod 50) <- [| 30.; -30.; 30. |];
      let perm = Randkit.Prng.permutation (Randkit.Prng.create (seed + 999)) 50 in
      let permuted =
        {
          Simulator.points = Array.map (fun j -> d.Simulator.points.(j)) perm;
          values = Array.map (fun j -> d.Simulator.values.(j)) perm;
        }
      in
      let kept_of data =
        match Robust.Screen.mahalanobis data with
        | Ok (_, r) -> r.Robust.Screen.p_kept
        | Error e -> Alcotest.fail (Robust.Error.to_string e)
      in
      let kept = kept_of d in
      let kept_p = kept_of permuted in
      (* Map the permuted verdicts back to original row identities. *)
      let back = Array.map (fun j -> perm.(j)) kept_p in
      Array.sort compare back;
      back = kept)

let qtest_response_screen_order_invariant =
  qtest ~count:30 "response-screen verdicts invariant to sample order (qcheck)"
    QCheck.small_nat
    (fun seed0 ->
      let seed = 1 + seed0 in
      let d = gaussian_dataset ~dim:2 ~k:41 seed in
      d.Simulator.values.(seed mod 41) <- 1e7;
      let perm = Randkit.Prng.permutation (Randkit.Prng.create (seed + 7)) 41 in
      let permuted =
        {
          Simulator.points = Array.map (fun j -> d.Simulator.points.(j)) perm;
          values = Array.map (fun j -> d.Simulator.values.(j)) perm;
        }
      in
      let kept_of data =
        match Robust.Screen.screen data with
        | Ok (_, r) -> r.Robust.Screen.kept
        | Error e -> Alcotest.fail (Robust.Error.to_string e)
      in
      let kept = kept_of d in
      let back = Array.map (fun j -> perm.(j)) (kept_of permuted) in
      Array.sort compare back;
      back = kept)

let suite =
  ( "burst",
    [
      case "markov: states are deterministic" test_markov_states_deterministic;
      case "markov: windows partition the burst steps"
        test_markov_windows_consistent;
      case "markov: degenerate chains and validation"
        test_markov_degenerate_chains;
      case "burst_states: pure function of the plan" test_burst_states_of_plan;
      case "burst injection: pool parity at 1/2/4 domains"
        test_burst_run_pool_parity;
      case "burst off: legacy plans unchanged" test_burst_off_is_bitwise_legacy;
      case "adaptive retry: clean run == run bitwise"
        test_retry_clean_matches_run;
      case "adaptive retry: pool parity at 1/2/4 domains"
        test_retry_pool_parity;
      case "breaker: trips, fails fast, recovers, costs less"
        test_breaker_trips_and_recovers;
      case "budget: global attempt cap enforced" test_retry_budget_exhaustion;
      case "adaptive retry: validation" test_retry_policy_validation;
      case "mahalanobis: plants and flags a far point"
        test_mahalanobis_flags_far_point;
      case "mahalanobis: clean bulk survives" test_mahalanobis_clean_bulk_survives;
      case "mahalanobis: degenerate inputs and errors"
        test_mahalanobis_degenerate_and_errors;
      case "chi2 quantile: Wilson-Hilferty sanity" test_chi2_quantile_sanity;
      case "chi2 quantile: exact closed forms at dof 1-2"
        test_chi2_quantile_low_dof_exact;
      case "screen: two-sample MAD stands down"
        test_response_screen_two_sample_standdown;
      case "quorum: shortfall is a typed Simulation error"
        test_quorum_shortfall_is_typed;
      case "quorum: degraded fit notes the model and round-trips"
        test_degraded_fit_notes_and_roundtrip;
      case "quorum: full delivery carries no note"
        test_full_delivery_carries_no_note;
      case "pipeline: screen spaces compose" test_pipeline_screen_spaces;
      case "pipeline: adaptive burst fit is reproducible"
        test_pipeline_adaptive_deterministic;
      slow_case "pipeline: burst fit bitwise at 1/2/4 domains"
        test_burst_fit_pool_parity;
      case "cv: killed-then-resumed burst-trained sweep is bitwise"
        test_burst_cv_resume_bitwise;
      qtest_burst_domain_parity;
      qtest_mahalanobis_order_invariant;
      qtest_response_screen_order_invariant;
    ] )
