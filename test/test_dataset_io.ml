open Test_util

let dataset () =
  {
    Circuit.Simulator.points =
      [| [| 1.5; -0.25; 0.125 |]; [| 0.; 1e-10; -3.7 |] |];
    values = [| 893.25; -0.001 |];
  }

let test_roundtrip_string () =
  let d = dataset () in
  let buf = Buffer.create 128 in
  let s =
    let tmp = Filename.temp_file "ds" ".csv" in
    Fun.protect
      ~finally:(fun () -> Sys.remove tmp)
      (fun () ->
        Circuit.Dataset_io.save tmp d;
        let ic = open_in tmp in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            really_input_string ic (in_channel_length ic)))
  in
  Buffer.add_string buf s;
  match Circuit.Dataset_io.of_string s with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok d' ->
      check_int "size" 2 (Circuit.Simulator.dataset_size d');
      check_vec ~eps:0. "values exact" d.Circuit.Simulator.values
        d'.Circuit.Simulator.values;
      Array.iteri
        (fun i p ->
          check_vec ~eps:0. "points exact" p d'.Circuit.Simulator.points.(i))
        d.Circuit.Simulator.points

let test_header_and_errors () =
  let expect_error name s =
    match Circuit.Dataset_io.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected error" name
  in
  expect_error "empty" "";
  expect_error "no f column" "y0,y1\n1,2\n";
  expect_error "column mismatch" "y0,f\n1,2,3\n";
  expect_error "bad number" "y0,f\n1,abc\n";
  expect_error "header only" "y0,f\n";
  (* comments skipped *)
  match Circuit.Dataset_io.of_string "# note\ny0,f\n1,2\n" with
  | Ok d ->
      check_float "value parsed" 2. d.Circuit.Simulator.values.(0)
  | Error e -> Alcotest.failf "comment handling: %s" e

let test_malformed_line_numbers () =
  (* Diagnostics must name the physical line of the file, counting
     blanks and comments. *)
  let expect_error_containing name needle s =
    match Circuit.Dataset_io.of_string s with
    | Ok _ -> Alcotest.failf "%s: expected error" name
    | Error e ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        if not (contains e needle) then
          Alcotest.failf "%s: error %S does not mention %S" name e needle
  in
  (* Line 1 comment, line 2 header, line 3 good, line 4 ragged. *)
  expect_error_containing "ragged row line number" "line 4"
    "# comment\ny0,f\n1,2\n1,2,3\n";
  expect_error_containing "ragged says ragged" "ragged"
    "y0,f\n1,2,3\n";
  (* Blank line between rows still counts in the numbering. *)
  expect_error_containing "bad number line/column" "line 4, column 2"
    "y0,f\n1,2\n\n3,oops\n";
  expect_error_containing "nan rejected" "non-finite"
    "y0,f\n1,nan\n";
  expect_error_containing "inf rejected with position" "line 2, column 1"
    "y0,f\ninf,2\n";
  expect_error_containing "negative infinity rejected" "non-finite"
    "y0,f\n1,-infinity\n"

let test_save_rejects_non_finite () =
  let bad_value =
    { Circuit.Simulator.points = [| [| 1.; 2. |] |]; values = [| Float.nan |] }
  in
  let bad_point =
    {
      Circuit.Simulator.points = [| [| Float.infinity; 2. |] |];
      values = [| 1. |];
    }
  in
  let tmp = Filename.temp_file "ds" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      check_raises_invalid "save NaN value" (fun () ->
          Circuit.Dataset_io.save tmp bad_value);
      check_raises_invalid "save Inf point" (fun () ->
          Circuit.Dataset_io.save tmp bad_point))

let test_fit_from_reloaded_dataset () =
  (* Simulate, save, reload, fit: same model as fitting directly. *)
  let amp = Circuit.Opamp.build ~n_parasitics:15 () in
  let sim = Circuit.Opamp.simulator amp Circuit.Opamp.Offset in
  let g = rng () in
  let d = Circuit.Simulator.run sim g ~k:150 in
  let tmp = Filename.temp_file "ds" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Circuit.Dataset_io.save tmp d;
      match Circuit.Dataset_io.load tmp with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok d' ->
          let basis = Polybasis.Basis.constant_linear (Circuit.Opamp.dim amp) in
          let fit dd =
            Rsm.Omp.fit
              (Polybasis.Design.matrix_rows basis dd.Circuit.Simulator.points)
              dd.Circuit.Simulator.values ~lambda:8
          in
          check_vec ~eps:0. "identical models"
            (Rsm.Model.to_dense (fit d))
            (Rsm.Model.to_dense (fit d')))

(* --- expression export --- *)

let test_expression_linear () =
  let b = Polybasis.Basis.constant_linear 3 in
  let m =
    Rsm.Model.make ~basis_size:4 ~support:[| 0; 2 |] ~coeffs:[| 10.; -2.5 |]
  in
  Alcotest.(check string) "expression" "f = 10 - 2.5*y1"
    (Rsm.Serialize.to_expression m b)

let test_expression_quadratic () =
  let b = Polybasis.Basis.quadratic 2 in
  (* Find the y0^2 term index. *)
  let sq =
    let rec go i =
      if Polybasis.Term.equal (Polybasis.Basis.term b i) (Polybasis.Term.square 0)
      then i
      else go (i + 1)
    in
    go 0
  in
  let m = Rsm.Model.make ~basis_size:(Polybasis.Basis.size b) ~support:[| sq |] ~coeffs:[| 3. |] in
  Alcotest.(check string) "hermite spelled out" "f = 3*((y0^2 - 1)/sqrt2)"
    (Rsm.Serialize.to_expression m b)

let test_expression_empty () =
  let b = Polybasis.Basis.constant_linear 2 in
  let m = Rsm.Model.make ~basis_size:3 ~support:[||] ~coeffs:[||] in
  Alcotest.(check string) "zero model" "f = 0" (Rsm.Serialize.to_expression m b)

let suite =
  ( "dataset-io",
    [
      case "csv roundtrip" test_roundtrip_string;
      case "csv errors" test_header_and_errors;
      case "csv malformed rows: line-numbered errors" test_malformed_line_numbers;
      case "csv save rejects non-finite data" test_save_rejects_non_finite;
      case "fit from reloaded dataset" test_fit_from_reloaded_dataset;
      case "expression: linear" test_expression_linear;
      case "expression: quadratic hermite" test_expression_quadratic;
      case "expression: empty" test_expression_empty;
    ] )
