(* The domain pool and the determinism contract of the parallel kernels:
   every parallelized hot path must return the same bits as its
   sequential counterpart for a fixed seed, at every domain count. *)
open Test_util

let pool_counts = [ 1; 2; 4 ]

(* --- pool mechanics ------------------------------------------------ *)

let test_empty_range () =
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let hits = ref 0 in
      Parallel.Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> incr hits);
      check_int "empty range: body never runs" 0 !hits;
      let r =
        Parallel.Pool.parallel_reduce pool ?chunks:None ?grain:None ~lo:3
          ~hi:3 ~init:42
          ~fold:(fun ~lo:_ ~hi:_ -> 0)
          ~combine:( + )
      in
      check_int "empty reduce returns init" 42 r)

let test_single_item () =
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let seen = ref [] in
      Parallel.Pool.parallel_for pool ~lo:3 ~hi:4 (fun i ->
          seen := i :: !seen);
      check_bool "single index visited once" true (!seen = [ 3 ]))

let test_range_smaller_than_domains () =
  Parallel.Pool.with_pool ~domains:8 (fun pool ->
      let hits = Array.make 3 0 in
      Parallel.Pool.parallel_for pool ~lo:0 ~hi:3 (fun i ->
          hits.(i) <- hits.(i) + 1);
      Array.iteri
        (fun i h -> check_int (Printf.sprintf "index %d hit once" i) 1 h)
        hits)

let test_for_chunks_covers_range () =
  Parallel.Pool.with_pool ~domains:3 (fun pool ->
      let hits = Array.make 100 0 in
      Parallel.Pool.parallel_for_chunks pool ~chunks:7 ~lo:0 ~hi:100
        (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Array.iteri
        (fun i h -> check_int (Printf.sprintf "index %d hit once" i) 1 h)
        hits)

let test_reduce_sum () =
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun chunks ->
          let s =
            Parallel.Pool.parallel_reduce pool ~chunks ?grain:None ~lo:0
              ~hi:1000 ~init:0
              ~fold:(fun ~lo ~hi ->
                let a = ref 0 in
                for i = lo to hi - 1 do
                  a := !a + i
                done;
                !a)
              ~combine:( + )
          in
          check_int (Printf.sprintf "sum with %d chunks" chunks) 499500 s)
        [ 1; 2; 3; 7; 1000 ])

let test_reduce_combines_in_chunk_order () =
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let ranges =
        Parallel.Pool.parallel_reduce pool ~chunks:5 ?grain:None ~lo:0 ~hi:53
          ~init:[]
          ~fold:(fun ~lo ~hi -> [ (lo, hi) ])
          ~combine:( @ )
      in
      check_int "five chunks" 5 (List.length ranges);
      let expected_lo = ref 0 in
      List.iter
        (fun (lo, hi) ->
          check_int "chunks contiguous and in order" !expected_lo lo;
          check_bool "chunk non-empty" true (hi > lo);
          expected_lo := hi)
        ranges;
      check_int "chunks cover the range" 53 !expected_lo)

let test_exception_propagates_pool_survives () =
  (* The failure contract must hold at every domain count, including the
     degenerate single-domain pool. *)
  List.iter
    (fun domains ->
      Parallel.Pool.with_pool ~domains (fun pool ->
          (match
             Parallel.Pool.parallel_for pool ~lo:0 ~hi:100 (fun i ->
                 if i >= 50 then failwith "boom")
           with
          | () -> Alcotest.fail "expected the body's exception to propagate"
          | exception Failure msg ->
              check_bool
                (Printf.sprintf "body exception (domains=%d)" domains)
                true (msg = "boom"));
          (* The pool must stay fully usable after a failed operation. *)
          let hits = Array.make 10 0 in
          Parallel.Pool.parallel_for pool ~lo:0 ~hi:10 (fun i ->
              hits.(i) <- hits.(i) + 1);
          Array.iter
            (fun h ->
              check_int
                (Printf.sprintf "usable after failure (domains=%d)" domains)
                1 h)
            hits))
    pool_counts

let test_lowest_chunk_exception_wins () =
  (* Every chunk raises; the re-raised exception must be the one a
     sequential loop would have hit first (lowest chunk index) — at
     every domain count. *)
  List.iter
    (fun domains ->
      Parallel.Pool.with_pool ~domains (fun pool ->
          match
            Parallel.Pool.parallel_for_chunks pool ~chunks:4 ~lo:0 ~hi:100
              (fun ~lo ~hi:_ -> failwith (Printf.sprintf "chunk@%d" lo))
          with
          | () -> Alcotest.fail "expected an exception"
          | exception Failure msg ->
              check_bool
                (Printf.sprintf "lowest chunk wins (domains=%d)" domains)
                true
                (msg = "chunk@0")))
    pool_counts

let test_partial_failure_lowest_index_wins () =
  (* Only some chunks raise; the winner must still be the lowest-indexed
     failing chunk, and successful chunks' work must have completed. *)
  List.iter
    (fun domains ->
      Parallel.Pool.with_pool ~domains (fun pool ->
          let done_ = Array.make 4 false in
          match
            Parallel.Pool.parallel_for_chunks pool ~chunks:4 ~lo:0 ~hi:4
              (fun ~lo ~hi:_ ->
                if lo = 1 || lo = 3 then
                  failwith (Printf.sprintf "chunk@%d" lo)
                else done_.(lo) <- true)
          with
          | () -> Alcotest.fail "expected an exception"
          | exception Failure msg ->
              check_bool
                (Printf.sprintf "lowest failing chunk wins (domains=%d)"
                   domains)
                true (msg = "chunk@1");
              check_bool "non-failing chunk 0 ran" true done_.(0)))
    pool_counts

let test_domain_clamping () =
  Parallel.Pool.with_pool ~domains:0 (fun pool ->
      check_int "domains clamped up to 1" 1 (Parallel.Pool.num_domains pool));
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      check_int "requested count kept" 4 (Parallel.Pool.num_domains pool))

let test_shutdown_semantics () =
  let pool = Parallel.Pool.create ~domains:2 () in
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool (* idempotent *);
  check_raises_invalid "submit after shutdown" (fun () ->
      Parallel.Pool.parallel_for pool ~lo:0 ~hi:4 ignore);
  check_raises_invalid "set_default_domains 0" (fun () ->
      Parallel.Pool.set_default_domains 0)

let test_nested_parallel_no_deadlock () =
  (* Select's fold-parallel CV calls OMP's column-parallel sweep on the
     same pool; the caller-helps scheduler must not deadlock. *)
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let total = ref 0 in
      let mu = Mutex.create () in
      Parallel.Pool.parallel_for pool ~lo:0 ~hi:8 (fun _ ->
          let s =
            Parallel.Pool.parallel_reduce pool ?chunks:None ?grain:None ~lo:0
              ~hi:100 ~init:0
              ~fold:(fun ~lo ~hi ->
                let a = ref 0 in
                for i = lo to hi - 1 do
                  a := !a + i
                done;
                !a)
              ~combine:( + )
          in
          Mutex.lock mu;
          total := !total + s;
          Mutex.unlock mu);
      check_int "nested reduce per outer index" (8 * 4950) !total)

(* --- determinism of the parallel kernels --------------------------- *)

let with_pools f =
  List.map (fun d -> Parallel.Pool.with_pool ~domains:d f) pool_counts

let all_equal msg = function
  | [] | [ _ ] -> ()
  | ref :: rest ->
      List.iteri
        (fun i x ->
          check_bool
            (Printf.sprintf "%s: domains=%d equals domains=1" msg
               (List.nth pool_counts (i + 1)))
            true (x = ref))
        rest

let sparse_problem ~k ~m seed =
  let rng = Randkit.Prng.create seed in
  let g = Randkit.Gaussian.matrix rng k m in
  let f =
    Array.init k (fun i ->
        (2. *. Linalg.Mat.get g i 1)
        -. (1.5 *. Linalg.Mat.get g i (m / 2))
        +. Linalg.Mat.get g i (m - 1)
        +. (0.05 *. Randkit.Gaussian.sample rng))
  in
  (g, f)

let prop_design_matrix_deterministic seed =
  let rng = Randkit.Prng.create seed in
  let dim = 3 + Randkit.Prng.int rng 3 in
  let basis = Polybasis.Basis.quadratic dim in
  let pts = Array.init 17 (fun _ -> Randkit.Gaussian.vector rng dim) in
  let mats =
    with_pools (fun pool ->
        Linalg.Mat.to_arrays (Polybasis.Design.matrix_rows ~pool basis pts))
  in
  all_equal "design matrix bits" mats;
  true

let prop_omp_fit_deterministic seed =
  let g, f = sparse_problem ~k:40 ~m:25 seed in
  let fits =
    with_pools (fun pool ->
        let m = Rsm.Omp.fit ~pool g f ~lambda:5 in
        (m.Rsm.Model.support, Array.copy m.Rsm.Model.coeffs))
  in
  all_equal "OMP support and coefficient bits" fits;
  true

let prop_cv_select_deterministic seed =
  let g, f = sparse_problem ~k:40 ~m:25 seed in
  let results =
    with_pools (fun pool ->
        let r =
          Rsm.Select.omp ~pool (Randkit.Prng.create (seed + 1)) ~max_lambda:6 g
            f
        in
        (r.Rsm.Select.lambda, Array.copy r.Rsm.Select.curve,
         Rsm.Model.to_dense r.Rsm.Select.model))
  in
  all_equal "CV lambda, curve and model bits" results;
  true

let test_lars_resume_domain_parity () =
  (* A LARS checkpoint written under one domain count must resume to
     the same bits under every other: replay recomputes correlations
     per active column, live steps sweep in parallel — both are
     domain-count invariant. *)
  let g, f = sparse_problem ~k:40 ~m:25 913 in
  let src = Polybasis.Design.Provider.dense g in
  let full =
    Rsm.Serialize.to_string
      (Rsm.Lars.fit_p ~on_singular:`Fallback src f ~lambda:4)
  in
  let ck = ref None in
  ignore
    (Rsm.Lars.path_p ~on_singular:`Fallback ~checkpoint_every:2
       ~on_checkpoint:(fun c -> ck := Some c)
       src f ~max_steps:3);
  let ck = Option.get !ck in
  let fits =
    with_pools (fun pool ->
        Rsm.Serialize.to_string
          (Rsm.Lars.fit_p ~pool ~on_singular:`Fallback ~resume:ck src f
             ~lambda:4))
  in
  all_equal "resumed LARS model bits" fits;
  List.iter
    (fun s -> check_bool "resumed equals uninterrupted" true (s = full))
    fits

let test_cv_resume_domain_parity () =
  (* A CV sweep killed after two folds must resume bitwise at every
     domain count: cached folds load in fold order, refitted folds keep
     their original PRNG streams. *)
  let g, f = sparse_problem ~k:48 ~m:12 914 in
  let src = Polybasis.Design.Provider.dense g in
  let run ?pool ?checkpoint ?resume () =
    Rsm.Select.omp_p ?pool ?checkpoint ?resume ~folds:4
      (Randkit.Prng.create 55)
      ~max_lambda:5 src f
  in
  let fingerprint (r : Rsm.Select.result) =
    ( r.Rsm.Select.lambda,
      Array.copy r.Rsm.Select.curve,
      Rsm.Serialize.to_string r.Rsm.Select.model )
  in
  let full = fingerprint (run ()) in
  let dir = Filename.temp_file "rsm-cvpar" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun fn -> Sys.remove (Filename.concat dir fn))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let base = Filename.concat dir "cv" in
      let fold_file = Rsm.Serialize.Checkpoint.Cv.fold_file base in
      ignore (run ~checkpoint:base ());
      let results =
        with_pools (fun pool ->
            (* Re-kill before every resume so each domain count refits
               folds 2 and 3 rather than loading a predecessor's files. *)
            List.iter
              (fun q ->
                if Sys.file_exists (fold_file q) then Sys.remove (fold_file q))
              [ 2; 3 ];
            fingerprint (run ~pool ~checkpoint:base ~resume:true ()))
      in
      all_equal "resumed CV selection bits" results;
      List.iter
        (fun r -> check_bool "resumed equals uninterrupted" true (r = full))
        results)

let prop_simulator_batch_deterministic seed =
  let sram = Circuit.Sram.build ~cells:12 () in
  let sim = Circuit.Sram.simulator sram in
  let sequential =
    Circuit.Simulator.run sim (Randkit.Prng.create seed) ~k:30
  in
  let batches =
    with_pools (fun pool ->
        Circuit.Simulator.run ~pool sim (Randkit.Prng.create seed) ~k:30)
  in
  List.iter
    (fun (d : Circuit.Simulator.dataset) ->
      check_bool "points identical" true (d.points = sequential.points);
      check_bool "values identical" true (d.values = sequential.values))
    batches;
  true

let seed_gen = QCheck.int_range 1 10_000

let suite =
  ( "parallel",
    [
      case "pool: empty range" test_empty_range;
      case "pool: single item" test_single_item;
      case "pool: range < domains" test_range_smaller_than_domains;
      case "pool: chunked for covers range" test_for_chunks_covers_range;
      case "pool: reduce sums" test_reduce_sum;
      case "pool: reduce combines in chunk order"
        test_reduce_combines_in_chunk_order;
      case "pool: exception propagates, pool survives"
        test_exception_propagates_pool_survives;
      case "pool: lowest-chunk exception wins"
        test_lowest_chunk_exception_wins;
      case "pool: partial failure, lowest failing chunk wins"
        test_partial_failure_lowest_index_wins;
      case "pool: domain count clamping" test_domain_clamping;
      case "pool: shutdown semantics" test_shutdown_semantics;
      case "pool: nested parallelism does not deadlock"
        test_nested_parallel_no_deadlock;
      qtest ~count:15 "design matrix: parallel == sequential" seed_gen
        prop_design_matrix_deterministic;
      qtest ~count:15 "omp fit: parallel == sequential" seed_gen
        prop_omp_fit_deterministic;
      qtest ~count:8 "cv selection: parallel == sequential" seed_gen
        prop_cv_select_deterministic;
      case "lars resume: domain-count parity" test_lars_resume_domain_parity;
      case "cv resume: domain-count parity" test_cv_resume_domain_parity;
      qtest ~count:8 "simulator batch: parallel == sequential" seed_gen
        prop_simulator_batch_deterministic;
    ] )
