(* The counter-based sampling engine: random-access PRNG purity,
   ziggurat goodness of fit, and the support-projected streaming
   contract.

   The load-bearing claims are bitwise: a counter draw depends only on
   its (key, point, coord, draw) address — never on visit order — so a
   support-projected streamed yield equals the full-vector draw bit for
   bit at every batch size and domain count, and the refactored polar
   path reproduces the historical Prng.split_n stream exactly. *)

open Test_util

(* --- counter: position purity ---------------------------------------- *)

let addr_gen =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let* addrs =
      list_size (int_range 1 40)
        (triple (int_range 0 100_000) (int_range 0 500) (int_range 0 8))
    in
    let* shuffle_seed = int_range 1 1_000_000 in
    return (seed, addrs, shuffle_seed))

let arbitrary_addrs =
  QCheck.make addr_gen ~print:(fun (seed, addrs, sh) ->
      Printf.sprintf "seed=%d n=%d shuffle=%d" seed (List.length addrs) sh)

let counter_suite =
  [
    qtest ~count:200 "draws are position-pure (visit order irrelevant)"
      arbitrary_addrs (fun (seed, addrs, shuffle_seed) ->
        let key = Randkit.Counter.create seed in
        let draw (p, c, d) =
          Randkit.Counter.bits64 (Randkit.Counter.at key p) ~coord:c ~draw:d
        in
        let in_order = List.map draw addrs in
        let shuffled = Array.of_list addrs in
        Randkit.Prng.shuffle (Randkit.Prng.create shuffle_seed) shuffled;
        (* Visit the same addresses in a different order, interleaved
           with unrelated draws; then re-read in the original order. *)
        Array.iter
          (fun a ->
            ignore (draw a);
            ignore (draw (1_000_000, 999, 9)))
          shuffled;
        List.map draw addrs = in_order);
    case "of_prng consumes exactly one parent output" (fun () ->
        let g1 = Randkit.Prng.create 2026 in
        let g2 = Randkit.Prng.create 2026 in
        let key = Randkit.Counter.of_prng g1 in
        let expected = Randkit.Prng.bits64 g2 in
        check_bool "key is the parent's next word" true
          (Randkit.Counter.key key = expected);
        check_bool "parent streams re-align" true
          (Randkit.Prng.bits64 g1 = Randkit.Prng.bits64 g2));
    case "distinct seeds / points / coords decorrelate" (fun () ->
        let k1 = Randkit.Counter.create 1 in
        let k2 = Randkit.Counter.create 2 in
        let b k p c = Randkit.Counter.bits64 (Randkit.Counter.at k p) ~coord:c ~draw:0 in
        check_bool "seed" true (b k1 0 0 <> b k2 0 0);
        check_bool "point" true (b k1 0 0 <> b k1 1 0);
        check_bool "coord" true (b k1 0 0 <> b k1 0 1));
    qtest ~count:200 "float is in [0, 1)"
      QCheck.(triple (int_bound 10_000) (int_bound 500) small_nat)
      (fun (p, c, d) ->
        let key = Randkit.Counter.create 77 in
        let u = Randkit.Counter.float (Randkit.Counter.at key p) ~coord:c ~draw:d in
        u >= 0. && u < 1.);
  ]

(* --- ziggurat: goodness of fit --------------------------------------- *)

(* Fixed seeds keep these deterministic; the thresholds are ~3x the
   expected KS/moment noise at n = 20 000, so they would only trip on a
   real distributional defect. *)
let gof_check name xs =
  let n = Array.length xs in
  let ks = Stat.Gof.ks_normal ~mean:0. ~sigma:1. xs in
  check_bool (name ^ ": KS vs N(0,1) small") true (ks < 1.95 /. sqrt (float_of_int n));
  check_bool (name ^ ": mean near 0") true
    (abs_float (Stat.Descriptive.mean xs) < 0.03);
  check_bool (name ^ ": std near 1") true
    (abs_float (Stat.Descriptive.std xs -. 1.) < 0.03)

let ziggurat_suite =
  [
    case "sequential sampler passes KS + moment GOF" (fun () ->
        gof_check "seq" (Randkit.Ziggurat.vector (Randkit.Prng.create 31) 20_000));
    case "counter sampler passes KS + moment GOF" (fun () ->
        let key = Randkit.Counter.create 32 in
        gof_check "ctr"
          (Array.init 20_000 (fun s ->
               Randkit.Ziggurat.normal_at (Randkit.Counter.at key s) ~coord:5)));
    case "tail beyond r is exercised and exact" (fun () ->
        (* P(|X| > r) ≈ 2.6e-4: 100k draws yield ~26 tail values. *)
        let xs = Randkit.Ziggurat.vector (Randkit.Prng.create 33) 100_000 in
        let tail =
          Array.fold_left
            (fun acc x ->
              if abs_float x > Randkit.Ziggurat.tail_start then acc + 1 else acc)
            0 xs
        in
        check_bool "tail hit" true (tail > 5 && tail < 80);
        Array.iter
          (fun x -> check_bool "finite" true (Float.is_finite x))
          xs);
    case "fill consumes the same stream as repeated sample" (fun () ->
        let g1 = Randkit.Prng.create 34 in
        let g2 = Randkit.Prng.create 34 in
        let out = Array.make 257 0. in
        Randkit.Ziggurat.fill g1 out;
        let expected = Array.init 257 (fun _ -> Randkit.Ziggurat.sample g2) in
        check_bool "bitwise" true (out = expected));
    case "Gaussian.fill_with dispatches by sampler" (fun () ->
        let out_p = Array.make 64 0. and out_z = Array.make 64 0. in
        Randkit.Gaussian.fill_with Randkit.Gaussian.Polar
          (Randkit.Prng.create 35) out_p;
        Randkit.Gaussian.fill_with Randkit.Gaussian.Ziggurat
          (Randkit.Prng.create 35) out_z;
        let expected_p = Array.make 64 0. and expected_z = Array.make 64 0. in
        Randkit.Gaussian.fill (Randkit.Prng.create 35) expected_p;
        Randkit.Ziggurat.fill (Randkit.Prng.create 35) expected_z;
        check_bool "polar" true (out_p = expected_p);
        check_bool "ziggurat" true (out_z = expected_z);
        check_bool "different streams" true (out_p <> out_z));
  ]

(* --- streaming: projection and bit-compat ---------------------------- *)

(* A model over a 40-dim quadratic basis touching only a few variables,
   so projection has something to skip. *)
let fixture () =
  let basis = Polybasis.Basis.quadratic 40 in
  let m = Polybasis.Basis.size basis in
  let g = Randkit.Prng.create 99 in
  let support = Randkit.Sampling.subsample g (Array.init m Fun.id) 12 in
  Array.sort compare support;
  let coeffs = Array.map (fun _ -> Randkit.Gaussian.sample g) support in
  let model = Rsm.Model.make ~basis_size:m ~support ~coeffs in
  (model, basis, Serve.Eval.compile model basis)

let spec = Rsm.Yield.spec_both ~lower:(-1.5) ~upper:1.5

(* The historical over_batches scheme, verbatim: materialized split_n
   children, sequential polar fill. The refactored on-demand derivation
   must reproduce it bit for bit. *)
let reference_polar_estimate ~batch ~samples tape rng spec =
  let nbatches = (samples + batch - 1) / batch in
  let rngs = Randkit.Prng.split_n rng nbatches in
  let scratch = Serve.Eval.make_scratch tape in
  let dy = Array.make (Serve.Eval.dim tape) 0. in
  let pass = ref 0 and sum = ref 0. and sumsq = ref 0. in
  for b = 0 to nbatches - 1 do
    let n = min batch (samples - (b * batch)) in
    (* per-batch partials, folded in batch order — the historical
       combine structure *)
    let bpass = ref 0 and bsum = ref 0. and bsumsq = ref 0. in
    for _ = 1 to n do
      Randkit.Gaussian.fill rngs.(b) dy;
      let v = Serve.Eval.eval_with tape scratch dy in
      if Rsm.Yield.passes spec v then incr bpass;
      bsum := !bsum +. v;
      bsumsq := !bsumsq +. (v *. v)
    done;
    pass := !pass + !bpass;
    sum := !sum +. !bsum;
    sumsq := !sumsq +. !bsumsq
  done;
  (!pass, !sum, !sumsq)

let stream_suite =
  [
    case "polar path bitwise reproduces the split_n stream" (fun () ->
        let _, _, tape = fixture () in
        let rng = Randkit.Prng.create 123 in
        let rng_ref = Randkit.Prng.create 123 in
        let e = Serve.Stream.estimate ~batch:100 ~samples:1234 tape rng spec in
        let pass, sum, sumsq =
          reference_polar_estimate ~batch:100 ~samples:1234 tape rng_ref spec
        in
        check_int "pass" pass e.Serve.Stream.pass;
        let nf = 1234. in
        check_bool "mean bitwise" true (e.Serve.Stream.mean = sum /. nf);
        let mean = sum /. nf in
        check_bool "std bitwise" true
          (e.Serve.Stream.std
          = sqrt (Float.max ((sumsq /. nf) -. (mean *. mean)) 0.));
        (* The caller's generator must advance exactly as split_n did:
           one output per batch. *)
        check_bool "caller rng position preserved" true
          (Randkit.Prng.bits64 rng = Randkit.Prng.bits64 rng_ref));
    qtest ~count:40 "projected == full draw (bitwise), any batch, 1/2 domains"
      QCheck.(pair (int_range 1 1_000_000) (int_range 16 300))
      (fun (seed, batch) ->
        let _, _, tape = fixture () in
        let samples = 700 in
        let est ?pool ~project batch =
          Serve.Stream.estimate ?pool ~batch
            ~sampler:Randkit.Gaussian.Ziggurat ~project ~samples tape
            (Randkit.Prng.create seed) spec
        in
        let full = est ~project:false batch in
        let projected = est ~project:true batch in
        let projected_other_batch = est ~project:true (batch + 13) in
        let pooled =
          Parallel.Pool.with_pool ~domains:2 (fun pool ->
              est ~pool ~project:true batch)
        in
        (* For a fixed batch, every statistic matches bitwise; across
           batch sizes the draws (hence yield/pass/se) still match,
           while mean/std regroup the per-batch partial sums. *)
        let stats e =
          Serve.Stream.(e.yield, e.std_error, e.pass, e.mean, e.std)
        in
        let invariant e = Serve.Stream.(e.yield, e.std_error, e.pass) in
        stats full = stats projected
        && stats projected = stats pooled
        && invariant projected = invariant projected_other_batch);
    case "projected == full (bitwise) at 1/2/4 domains" (fun () ->
        let _, _, tape = fixture () in
        let run domains project =
          Parallel.Pool.with_pool ~domains (fun pool ->
              Serve.Stream.estimate ~pool ~samples:20_000
                ~sampler:Randkit.Gaussian.Ziggurat ~project tape
                (Randkit.Prng.create 7) spec)
        in
        let base = run 1 true in
        List.iter
          (fun domains ->
            check_bool "projected invariant" true (run domains true = base);
            check_bool "full == projected" true (run domains false = base))
          [ 1; 2; 4 ]);
    case "values: projected == full (bitwise)" (fun () ->
        let _, _, tape = fixture () in
        let vals project =
          Serve.Stream.values ~samples:3_000 ~batch:256
            ~sampler:Randkit.Gaussian.Ziggurat ~project tape
            (Randkit.Prng.create 11)
        in
        check_bool "bitwise" true (vals true = vals false));
    case "Yield ziggurat == Stream ziggurat (bitwise cross-path)" (fun () ->
        let model, basis, tape = fixture () in
        let e =
          Serve.Stream.estimate ~samples:5_000
            ~sampler:Randkit.Gaussian.Ziggurat tape (Randkit.Prng.create 55)
            spec
        in
        let y, se =
          Rsm.Yield.monte_carlo ~samples:5_000
            ~eval:(Serve.Eval.evaluator tape)
            ~sampler:Randkit.Gaussian.Ziggurat
            ~touched:(Serve.Eval.touched_vars tape) model basis
            (Randkit.Prng.create 55) spec
        in
        check_bool "yield bitwise" true (y = e.Serve.Stream.yield);
        check_bool "se bitwise" true (se = e.Serve.Stream.std_error));
    case "Yield: ~touched == full draw, polar default unchanged" (fun () ->
        let model, basis, tape = fixture () in
        let mc ?touched () =
          Rsm.Yield.monte_carlo_values ~samples:2_000
            ~sampler:Randkit.Gaussian.Ziggurat ?touched model basis
            (Randkit.Prng.create 5)
        in
        check_bool "projected values bitwise" true
          (mc ~touched:(Serve.Eval.touched_vars tape) () = mc ());
        (* The polar path must keep the historical stream: one
           Gaussian.vector per sample. *)
        let n = Polybasis.Basis.dim basis in
        let g = Randkit.Prng.create 6 in
        let expected =
          Array.init 50 (fun _ ->
              Rsm.Model.predict_point model basis (Randkit.Gaussian.vector g n))
        in
        let got =
          Rsm.Yield.monte_carlo_values ~samples:50 model basis
            (Randkit.Prng.create 6)
        in
        check_bool "polar bitwise" true (got = expected));
    case "projection without the counter sampler is rejected" (fun () ->
        let model, basis, tape = fixture () in
        check_raises_invalid "stream" (fun () ->
            Serve.Stream.estimate ~samples:100 ~project:true tape
              (Randkit.Prng.create 1) spec);
        check_raises_invalid "yield" (fun () ->
            Rsm.Yield.monte_carlo_values ~samples:100 ~touched:[| 0 |] model
              basis (Randkit.Prng.create 1)));
    case "Pipeline.serve_yield bridges fit to streamed estimate" (fun () ->
        let amp = Circuit.Opamp.build ~n_parasitics:10 () in
        let sim = Circuit.Opamp.simulator amp Circuit.Opamp.Offset in
        let basis = Polybasis.Basis.constant_linear (Circuit.Opamp.dim amp) in
        let cfg =
          match Robust.Pipeline.config ~samples:120 ~folds:3 ~max_lambda:6 () with
          | Ok cfg -> cfg
          | Error e -> Alcotest.failf "config: %s" (Robust.Error.to_string e)
        in
        match Robust.Pipeline.fit cfg sim basis (Randkit.Prng.create 17) with
        | Error e -> Alcotest.failf "fit: %s" (Robust.Error.to_string e)
        | Ok outcome -> (
            let wide = Rsm.Yield.spec_both ~lower:(-50.) ~upper:50. in
            (match
               Robust.Pipeline.serve_yield ~samples:4_000
                 ~sampler:Randkit.Gaussian.Ziggurat outcome basis
                 (Randkit.Prng.create 3) wide
             with
            | Error e -> Alcotest.failf "serve_yield: %s" (Robust.Error.to_string e)
            | Ok e ->
                check_int "all samples scored" 4_000 e.Serve.Stream.samples;
                check_bool "yield in range" true
                  (e.Serve.Stream.yield >= 0. && e.Serve.Stream.yield <= 1.));
            match
              Robust.Pipeline.serve_yield ~project:true outcome basis
                (Randkit.Prng.create 3) wide
            with
            | Error (Robust.Error.Config _) -> ()
            | Ok _ | Error _ ->
                Alcotest.fail "project without ziggurat must be Config error"));
  ]

let suite = ("sampler", counter_suite @ ziggurat_suite @ stream_suite)
