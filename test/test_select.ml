(* Cross-validated λ selection and the unified solver front-end. *)
open Test_util
open Linalg

let sparse_problem ?(noise = 0.) ~k ~m ~support ~coeffs seed =
  let g = Randkit.Prng.create seed in
  let design = Randkit.Gaussian.matrix g k m in
  let f =
    Array.init k (fun i ->
        let acc = ref 0. in
        Array.iteri
          (fun p j -> acc := !acc +. (coeffs.(p) *. Mat.get design i j))
          support;
        !acc +. (noise *. Randkit.Gaussian.sample g))
  in
  (design, f)

let test_omp_cv_finds_true_sparsity () =
  let g, f =
    sparse_problem ~noise:0.05 ~k:120 ~m:60 ~support:[| 5; 20; 40 |]
      ~coeffs:[| 2.; -1.; 1.5 |] 31
  in
  let r = Rsm.Select.omp (rng ()) ~max_lambda:15 g f in
  check_bool "lambda near 3" true (r.Rsm.Select.lambda >= 3 && r.Rsm.Select.lambda <= 6);
  check_bool "true support inside" true
    (List.for_all
       (fun j -> Rsm.Model.coeff r.Rsm.Select.model j <> 0.)
       [ 5; 20; 40 ])

let test_cv_curve_shape () =
  (* ε(λ) must drop sharply until the true sparsity then flatten/rise:
     the minimum is not in the first λ, and clearly below λ=1's error. *)
  let g, f =
    sparse_problem ~noise:0.1 ~k:100 ~m:50 ~support:[| 3; 30 |]
      ~coeffs:[| 2.; 2. |] 32
  in
  let r = Rsm.Select.omp (rng ()) ~max_lambda:10 g f in
  let curve = r.Rsm.Select.curve in
  check_int "curve length" 10 (Array.length curve);
  check_bool "error at optimum << error at 1" true
    (curve.(r.Rsm.Select.lambda - 1) < 0.5 *. curve.(0))

let test_star_cv_runs () =
  let g, f =
    sparse_problem ~noise:0.1 ~k:100 ~m:50 ~support:[| 3; 30 |]
      ~coeffs:[| 2.; 2. |] 33
  in
  let r = Rsm.Select.star (rng ()) ~max_lambda:10 g f in
  check_bool "model non-empty" true (Rsm.Model.nnz r.Rsm.Select.model > 0)

let test_lars_cv_runs () =
  let g, f =
    sparse_problem ~noise:0.1 ~k:100 ~m:50 ~support:[| 3; 30 |]
      ~coeffs:[| 2.; 2. |] 34
  in
  let r = Rsm.Select.lars (rng ()) ~max_lambda:10 g f in
  check_bool "model non-empty" true (Rsm.Model.nnz r.Rsm.Select.model > 0);
  check_bool "support includes truth" true
    (Rsm.Model.coeff r.Rsm.Select.model 3 <> 0.
    && Rsm.Model.coeff r.Rsm.Select.model 30 <> 0.)

let test_generic_pads_short_paths () =
  (* A solver whose path stops after 2 models must still give a curve of
     the requested length. *)
  let g, f =
    sparse_problem ~k:40 ~m:20 ~support:[| 1 |] ~coeffs:[| 1. |] 35
  in
  let r =
    Rsm.Select.generic (rng ()) ~max_lambda:8
      ~path_models:(fun ~rng:_ g f ~max_lambda ->
        let n = min max_lambda 2 in
        Array.init n (fun l -> Rsm.Omp.fit g f ~lambda:(l + 1)))
      g f
  in
  check_int "curve padded" 8 (Array.length r.Rsm.Select.curve)

let test_folds_parameter () =
  let g, f =
    sparse_problem ~noise:0.1 ~k:60 ~m:30 ~support:[| 2 |] ~coeffs:[| 1. |] 36
  in
  (* Q = 2, 5: both must run; the paper's Fig. 2 uses Q = 4 by default. *)
  List.iter
    (fun q ->
      let r = Rsm.Select.omp ~folds:q (rng ()) ~max_lambda:6 g f in
      check_bool "ran" true (Array.length r.Rsm.Select.curve = 6))
    [ 2; 5 ]

(* --- Solver front-end --- *)

let test_solver_names () =
  Alcotest.(check (list string))
    "table order"
    [ "LS"; "STAR"; "LAR"; "OMP" ]
    (List.map Rsm.Solver.name Rsm.Solver.all)

let test_solver_of_name () =
  check_bool "omp" true (Rsm.Solver.of_name "OMP" = Some Rsm.Solver.Omp);
  check_bool "lars alias" true (Rsm.Solver.of_name "lars" = Some Rsm.Solver.Lar);
  check_bool "lasso" true (Rsm.Solver.of_name "Lasso" = Some Rsm.Solver.Lasso);
  check_bool "stomp" true (Rsm.Solver.of_name "stomp" = Some Rsm.Solver.Stomp);
  check_bool "cosamp" true (Rsm.Solver.of_name "CoSaMP" = Some Rsm.Solver.Cosamp);
  check_bool "unknown" true (Rsm.Solver.of_name "svm" = None)

let test_solver_fit_dispatch () =
  let g, f =
    sparse_problem ~noise:0.05 ~k:80 ~m:40 ~support:[| 2; 9 |]
      ~coeffs:[| 1.; -1. |] 37
  in
  List.iter
    (fun meth ->
      let m = Rsm.Solver.fit ~lambda:4 g f meth in
      let e = Rsm.Model.error_on m g f in
      check_bool (Rsm.Solver.name meth ^ " trains") true (e < 0.9))
    [ Rsm.Solver.Ls; Rsm.Solver.Star; Rsm.Solver.Lar; Rsm.Solver.Lasso;
      Rsm.Solver.Omp; Rsm.Solver.Stomp; Rsm.Solver.Cosamp ]

let test_solver_fit_cv_dispatch () =
  let g, f =
    sparse_problem ~noise:0.05 ~k:80 ~m:40 ~support:[| 2; 9 |]
      ~coeffs:[| 1.; -1. |] 38
  in
  List.iter
    (fun meth ->
      let m = Rsm.Solver.fit_cv (rng ()) ~max_lambda:8 g f meth in
      check_bool (Rsm.Solver.name meth ^ " cv trains") true
        (Rsm.Model.error_on m g f < 0.9))
    (Rsm.Solver.all @ [ Rsm.Solver.Stomp; Rsm.Solver.Cosamp ])

let test_needs_overdetermined () =
  check_bool "only LS" true
    (List.map Rsm.Solver.needs_overdetermined Rsm.Solver.all
    = [ true; false; false; false ])

let suite =
  ( "select",
    [
      case "omp cv: finds true sparsity" test_omp_cv_finds_true_sparsity;
      case "cv curve shape" test_cv_curve_shape;
      case "star cv" test_star_cv_runs;
      case "lars cv" test_lars_cv_runs;
      case "generic: pads short paths" test_generic_pads_short_paths;
      case "fold count parameter" test_folds_parameter;
      case "solver: names" test_solver_names;
      case "solver: of_name" test_solver_of_name;
      case "solver: fit dispatch" test_solver_fit_dispatch;
      case "solver: fit_cv dispatch" test_solver_fit_cv_dispatch;
      case "solver: needs_overdetermined" test_needs_overdetermined;
    ] )
