(* Process-sharded sweep tests re-exec this binary as shard workers;
   the hook must run before Alcotest sees the command line. *)
let () = Rsm.Shard_sweep.worker_entry_if_requested ()

let () =
  Alcotest.run "rsm"
    [
      Test_vec.suite;
      Test_mat.suite;
      Test_factor.suite;
      Test_randkit.suite;
      Test_stat.suite;
      Test_polybasis.suite;
      Test_circuit.suite;
      Test_model.suite;
      Test_solvers.suite;
      Test_select.suite;
      Test_svd.suite;
      Test_distribution.suite;
      Test_extensions.suite;
      Test_ridge_extra.suite;
      Test_diagnostics.suite;
      Test_serialize.suite;
      Test_moments.suite;
      Test_edge_cases.suite;
      Test_round2.suite;
      Test_select_rules.suite;
      Test_l0_exact.suite;
      Test_variance_reduction.suite;
      Test_misc_api.suite;
      Test_dataset_io.suite;
      Test_cosamp.suite;
      Test_integration.suite;
      Test_parallel.suite;
      Test_provider.suite;
      Test_robust.suite;
      Test_sweep.suite;
      Test_shard.suite;
      Test_serve.suite;
      Test_burst.suite;
      Test_sampler.suite;
      Test_multi.suite;
    ]
