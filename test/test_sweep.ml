(* The gram-cached incremental correlation engine and the fused
   multi-residual CV sweep.

   Contracts under test:
   - Cholesky.Grow.downdate_row equals refactorizing from the surviving
     rows, and raises once too few rows remain.
   - gram_tr_multi / argmax_abs_multi are bitwise equal to the Q
     independent per-fold sweeps, Dense and Streamed, at 1/2/4 domains.
   - sweep:Incremental agrees with sweep:Exact to 1e-10 relative on
     every solver (OMP, STAR, LAR, LASSO), at several refresh cadences,
     including paths with banned columns (duplicate dictionary entries)
     and lasso drops.
   - an incremental-sweep LAR checkpoint resumes bitwise equal to the
     uninterrupted incremental run.
   - a dictionary whose every column gets banned terminates with an
     annotated model instead of raising.
   - fused CV selection is bitwise equal to the per-fold driver.
   - Pipeline.screen_refit (gram down-date) matches a cold refit on the
     kept rows. *)
open Test_util
module P = Polybasis.Design.Provider
module CS = Rsm.Corr_sweep

let pool_counts = [ 1; 2; 4 ]

let with_pools f =
  List.map (fun d -> Parallel.Pool.with_pool ~domains:d f) pool_counts

let all_equal msg = function
  | [] | [ _ ] -> ()
  | ref :: rest ->
      List.iteri
        (fun i x ->
          check_bool
            (Printf.sprintf "%s: domains=%d equals domains=1" msg
               (List.nth pool_counts (i + 1)))
            true (x = ref))
        rest

let model_bits (m : Rsm.Model.t) =
  (m.Rsm.Model.support, Array.copy m.Rsm.Model.coeffs)

let rel_gap a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  if scale = 0. then 0. else Float.abs (a -. b) /. scale

(* Relative agreement of two models: same support, coefficients within
   tol of each other on the coefficient vector's scale — not each
   coefficient's own magnitude, which would hold ulp-level drift on a
   near-zero coefficient to an impossible standard whenever the model
   also carries O(1) coefficients. *)
let check_model_close msg tol (a : Rsm.Model.t) (b : Rsm.Model.t) =
  check_bool (msg ^ ": same support") true
    (a.Rsm.Model.support = b.Rsm.Model.support);
  let vscale =
    Array.fold_left
      (fun acc c -> Float.max acc (Float.abs c))
      (Array.fold_left (fun acc c -> Float.max acc (Float.abs c)) 0. b.Rsm.Model.coeffs)
      a.Rsm.Model.coeffs
  in
  Array.iteri
    (fun i ca ->
      let cb = b.Rsm.Model.coeffs.(i) in
      let gap =
        if vscale = 0. then Float.abs (ca -. cb)
        else Float.abs (ca -. cb) /. vscale
      in
      if gap > tol then
        Alcotest.failf "%s: coeff %d differs: %.17g vs %.17g (rel %.2e)" msg i
          ca cb gap)
    a.Rsm.Model.coeffs

let random_setting seed =
  let rng = Randkit.Prng.create seed in
  let dim = 3 + Randkit.Prng.int rng 3 in
  let basis = Polybasis.Basis.quadratic dim in
  let k = 18 + Randkit.Prng.int rng 16 in
  let pts = Array.init k (fun _ -> Randkit.Gaussian.vector rng dim) in
  let g =
    Parallel.Pool.with_pool ~domains:1 (fun pool ->
        Polybasis.Design.matrix_rows ~pool basis pts)
  in
  (rng, basis, pts, g)

let sparse_response rng src =
  let k = P.rows src and m = P.cols src in
  let p = 2 + Randkit.Prng.int rng 3 in
  let support = Randkit.Sampling.subsample rng (Array.init m Fun.id) p in
  let f = Array.init k (fun _ -> 0.05 *. Randkit.Gaussian.sample rng) in
  Array.iter
    (fun j ->
      let col = P.column src j in
      for i = 0 to k - 1 do
        f.(i) <- f.(i) +. col.(i)
      done)
    support;
  f

(* --- Cholesky down-date -------------------------------------------- *)

let gram_of_rows cols rows =
  let p = Array.length cols in
  let a = Linalg.Mat.create p p in
  for x = 0 to p - 1 do
    for y = 0 to p - 1 do
      let acc = ref 0. in
      Array.iter (fun i -> acc := !acc +. (cols.(x).(i) *. cols.(y).(i))) rows;
      Linalg.Mat.set a x y !acc
    done
  done;
  a

let test_downdate_matches_refactor () =
  let rng = rng () in
  let k = 30 and p = 6 in
  let cols = Array.init p (fun _ -> Randkit.Gaussian.vector rng k) in
  let g = Linalg.Cholesky.Grow.create p in
  for j = 0 to p - 1 do
    let v = Array.init j (fun a -> Linalg.Vec.dot cols.(a) cols.(j)) in
    Linalg.Cholesky.Grow.append g v (Linalg.Vec.dot cols.(j) cols.(j))
  done;
  let dropped = [| 3; 11; 12; 27 |] in
  Array.iter
    (fun i ->
      Linalg.Cholesky.Grow.downdate_row g
        (Array.map (fun col -> col.(i)) cols))
    dropped;
  let kept =
    Array.of_list
      (List.filter
         (fun i -> not (Array.mem i dropped))
         (List.init k Fun.id))
  in
  let reference = Linalg.Cholesky.factor (gram_of_rows cols kept) in
  let l = Linalg.Cholesky.Grow.factor_copy g in
  check_mat ~eps:1e-8 "down-dated factor == refactorized factor" reference l;
  (* And solving with the down-dated factor matches an LS fit on the
     surviving rows. *)
  let f = Randkit.Gaussian.vector rng k in
  let b =
    Array.init p (fun q ->
        Array.fold_left
          (fun acc i -> acc +. (cols.(q).(i) *. f.(i)))
          0. kept)
  in
  let x = Linalg.Cholesky.Grow.solve g b in
  let x_ref = Linalg.Cholesky.solve reference b in
  check_vec ~eps:1e-8 "down-dated solve == refactorized solve" x_ref x

let test_downdate_raises_when_underdetermined () =
  let rng = rng () in
  let k = 4 and p = 4 in
  let cols = Array.init p (fun _ -> Randkit.Gaussian.vector rng k) in
  let g = Linalg.Cholesky.Grow.create p in
  for j = 0 to p - 1 do
    let v = Array.init j (fun a -> Linalg.Vec.dot cols.(a) cols.(j)) in
    Linalg.Cholesky.Grow.append g v (Linalg.Vec.dot cols.(j) cols.(j))
  done;
  (* Removing a row from a square system leaves a rank-deficient Gram:
     the down-date must detect the lost pivot. *)
  match
    Linalg.Cholesky.Grow.downdate_row g (Array.map (fun col -> col.(0)) cols)
  with
  | () -> Alcotest.fail "expected Not_positive_definite"
  | exception Linalg.Cholesky.Not_positive_definite _ -> ()

let test_downdate_validates_length () =
  let g = Linalg.Cholesky.Grow.create 2 in
  Linalg.Cholesky.Grow.append g [||] 4.;
  check_raises_invalid "row length mismatch" (fun () ->
      Linalg.Cholesky.Grow.downdate_row g [| 1.; 2. |])

(* --- fused multi-residual sweeps ----------------------------------- *)

let fold_rows_of rng k q =
  if q = 1 then [| Array.init k Fun.id |]
  else
    let assignment = Randkit.Sampling.fold_assignment rng ~n:k ~folds:q in
    Array.init q (fun fq -> fst (Randkit.Sampling.fold_split assignment fq))

let prop_multi_bitwise seed =
  let rng, basis, pts, g = random_setting seed in
  let src_s = P.streamed basis pts in
  let src_d = P.dense g in
  let k = P.rows src_s and m = P.cols src_s in
  let r = Randkit.Gaussian.vector rng k in
  List.iter
    (fun q ->
      let rows = fold_rows_of rng k q in
      let rs = Array.map (fun idx -> Array.map (fun i -> r.(i)) idx) rows in
      let skips =
        Array.init q (fun _ ->
            Array.init m (fun _ -> Randkit.Prng.int rng 5 = 0))
      in
      List.iter
        (fun src ->
          let name = if P.is_streamed src then "streamed" else "dense" in
          let outs =
            with_pools (fun pool ->
                ( CS.gram_tr_multi ~pool src ~rows rs,
                  CS.argmax_abs_multi ~pool ~skips src ~rows rs ))
          in
          all_equal (Printf.sprintf "%s multi q=%d across domains" name q)
            outs;
          let multi, picks = List.hd outs in
          Array.iteri
            (fun fq idx ->
              let sub = P.select_rows src idx in
              let independent = CS.gram_tr sub rs.(fq) in
              check_bool
                (Printf.sprintf "%s gram_tr_multi fold %d/%d bitwise" name fq
                   q)
                true
                (independent = multi.(fq));
              let pick = CS.argmax_abs ~skip:skips.(fq) sub rs.(fq) in
              check_bool
                (Printf.sprintf "%s argmax_abs_multi fold %d/%d bitwise" name
                   fq q)
                true
                (pick = picks.(fq)))
            rows)
        [ src_d; src_s ])
    [ 1; 2; 4 ];
  true

let test_multi_validation () =
  let _, basis, pts, _ = random_setting 7 in
  let src = P.streamed basis pts in
  let k = P.rows src in
  check_raises_invalid "empty fold set" (fun () ->
      CS.gram_tr_multi src ~rows:[||] [||]);
  check_raises_invalid "count mismatch" (fun () ->
      CS.gram_tr_multi src ~rows:[| [| 0 |] |] [| [| 1. |]; [| 1. |] |]);
  check_raises_invalid "residual length mismatch" (fun () ->
      CS.gram_tr_multi src ~rows:[| [| 0; 1 |] |] [| [| 1. |] |]);
  check_raises_invalid "non-ascending rows" (fun () ->
      CS.gram_tr_multi src ~rows:[| [| 1; 0 |] |] [| [| 1.; 1. |] |]);
  check_raises_invalid "out-of-range row" (fun () ->
      CS.gram_tr_multi src ~rows:[| [| k |] |] [| [| 1. |] |])

(* --- incremental vs exact parity ----------------------------------- *)

let cadences = [ 1; 4; 0 ]

let fit_with solver ~sweep ~pool src f ~lambda =
  match solver with
  | `Omp -> Rsm.Omp.fit_p ~pool ~sweep src f ~lambda
  | `Star -> Rsm.Star.fit_p ~pool ~sweep src f ~lambda
  | `Lar -> Rsm.Lars.fit_p ~mode:Rsm.Lars.Lar ~pool ~sweep src f ~lambda
  | `Lasso -> Rsm.Lars.fit_p ~mode:Rsm.Lars.Lasso ~pool ~sweep src f ~lambda

let prop_incremental_parity solver seed =
  let rng, _, _, g = random_setting seed in
  let src = P.dense g in
  let f = sparse_response rng src in
  let lambda = min 6 (min (P.rows src) (P.cols src)) in
  Parallel.Pool.with_pool ~domains:2 (fun pool ->
      let exact = fit_with solver ~sweep:CS.Exact ~pool src f ~lambda in
      List.iter
        (fun refresh ->
          let inc =
            fit_with solver
              ~sweep:(CS.incremental ~refresh ())
              ~pool src f ~lambda
          in
          check_model_close
            (Printf.sprintf "refresh=%d vs exact" refresh)
            1e-10 exact inc)
        cadences);
  true

(* A dictionary with a column that is a linear combination of two
   others: once both parents are active (or the combination plus one
   parent), the third is numerically dependent and gets banned under
   `Fallback — at a generically separated correlation value, never an
   exact tie, so the decision is stable under the incremental engine's
   1-ulp-level rounding differences and step-level parity is a sound
   contract. (Exact-duplicate columns sit at a permanent 0/0 tie in the
   enter scan, where either engine may legitimately diverge; the
   all-identical-dictionary test below covers that termination case.) *)
let duplicated_problem seed =
  let rng = Randkit.Prng.create seed in
  let k = 24 and m0 = 12 in
  let g0 = Randkit.Gaussian.matrix rng k m0 in
  let cols = Array.init m0 (fun j -> Linalg.Mat.col g0 j) in
  let combo = Array.init k (fun i -> cols.(0).(i) +. cols.(1).(i)) in
  let all = Array.append cols [| combo |] in
  let g = Linalg.Mat.init k (Array.length all) (fun i j -> all.(j).(i)) in
  let f =
    Array.init k (fun i ->
        (3. *. cols.(0).(i))
        +. (2. *. cols.(1).(i))
        +. (0.5 *. cols.(2).(i))
        +. (0.02 *. Randkit.Gaussian.sample rng))
  in
  (P.dense g, f)

let prop_incremental_parity_with_bans seed =
  let src, f = duplicated_problem seed in
  Parallel.Pool.with_pool ~domains:2 (fun pool ->
      let path sweep =
        Rsm.Lars.path_p ~mode:Rsm.Lars.Lasso ~pool ~on_singular:`Fallback
          ~sweep src f ~max_steps:10
      in
      let exact = path CS.Exact in
      List.iter
        (fun refresh ->
          let inc = path (CS.incremental ~refresh ()) in
          check_int
            (Printf.sprintf "refresh=%d: same step count" refresh)
            (Array.length exact) (Array.length inc);
          Array.iteri
            (fun i (e : Rsm.Lars.step) ->
              let v = inc.(i) in
              check_bool
                (Printf.sprintf "refresh=%d step %d: same added" refresh i)
                true
                (e.Rsm.Lars.added = v.Rsm.Lars.added);
              check_bool
                (Printf.sprintf "refresh=%d step %d: same dropped" refresh i)
                true
                (e.Rsm.Lars.dropped = v.Rsm.Lars.dropped);
              check_bool
                (Printf.sprintf "refresh=%d step %d: same notes" refresh i)
                true
                (Rsm.Model.notes e.Rsm.Lars.model
                = Rsm.Model.notes v.Rsm.Lars.model);
              check_model_close
                (Printf.sprintf "refresh=%d step %d model" refresh i)
                1e-10 e.Rsm.Lars.model v.Rsm.Lars.model)
            exact)
        cadences);
  true

(* Every column identical: with `Fallback the first enters and every
   other candidate is banned; the walk must end in an annotated model,
   never a raise, and argmax_abs's (-1, 0.) all-skipped sentinel must
   not be confused with the banned-column zero-step path. *)
let test_all_banned_terminates () =
  List.iter
    (fun seed ->
      let rng = Randkit.Prng.create seed in
      let k = 16 in
      let base = Randkit.Gaussian.vector rng k in
      let m = 5 in
      let g = Linalg.Mat.init k m (fun i _ -> base.(i)) in
      let f = Array.init k (fun i -> base.(i) +. (0.01 *. float_of_int i)) in
      let src = P.dense g in
      Parallel.Pool.with_pool ~domains:2 (fun pool ->
          let steps =
            Rsm.Lars.path_p ~mode:Rsm.Lars.Lar ~pool ~on_singular:`Fallback
              src f ~max_steps:12
          in
          check_bool
            (Printf.sprintf "seed %d: walk terminates with steps" seed)
            true
            (Array.length steps > 0);
          let last = steps.(Array.length steps - 1) in
          check_int
            (Printf.sprintf "seed %d: one column survives" seed)
            1
            (Rsm.Model.nnz last.Rsm.Lars.model);
          let inc_steps =
            Rsm.Lars.path_p ~mode:Rsm.Lars.Lar ~pool ~on_singular:`Fallback
              ~sweep:(CS.incremental ()) src f ~max_steps:12
          in
          check_bool
            (Printf.sprintf "seed %d: incremental walk terminates" seed)
            true
            (Array.length inc_steps > 0)))
    [ 3; 17 ]

(* --- incremental LAR checkpoint/resume ----------------------------- *)

let step_bits (s : Rsm.Lars.step) =
  ( s.Rsm.Lars.added,
    s.Rsm.Lars.dropped,
    model_bits s.Rsm.Lars.model,
    Rsm.Model.notes s.Rsm.Lars.model )

let corr_bits (s : Rsm.Lars.step) = Int64.bits_of_float s.Rsm.Lars.max_corr

let test_incremental_lar_resume_bitwise () =
  let rng, _, _, g = random_setting 21 in
  let src = P.dense g in
  let f = sparse_response rng src in
  let sweep = CS.incremental ~refresh:4 () in
  Parallel.Pool.with_pool ~domains:2 (fun pool ->
      let saved = ref [] in
      let full =
        Rsm.Lars.path_p ~mode:Rsm.Lars.Lasso ~pool ~sweep ~checkpoint_every:2
          ~on_checkpoint:(fun c -> saved := c :: !saved)
          src f ~max_steps:8
      in
      let checkpoints = List.rev !saved in
      check_bool "captured at least one mid-run checkpoint" true
        (List.length checkpoints >= 2);
      (* Resume from a mid-run snapshot (not the terminal one). *)
      let mid = List.nth checkpoints (List.length checkpoints / 2 - 1) in
      let prefix = Array.length mid.Rsm.Serialize.Checkpoint.Lars.events in
      let resumed =
        Rsm.Lars.path_p ~mode:Rsm.Lars.Lasso ~pool ~sweep ~checkpoint_every:2
          ~on_checkpoint:(fun _ -> ())
          ~resume:mid src f ~max_steps:8
      in
      (* Every step's state (adds, drops, models) is bitwise equal; the
         diagnostic max_corr is bitwise only for the live continuation —
         replay recomputes it with exact sweeps, while the interrupted
         run read it from the delta-maintained vector, which drifts by
         ~1 ulp between refreshes. *)
      check_bool "resumed incremental path bitwise equals uninterrupted" true
        (Array.map step_bits full = Array.map step_bits resumed);
      check_bool "live continuation reports bitwise-equal correlations" true
        (Array.length full = Array.length resumed
        && prefix < Array.length full
        && Array.for_all2 ( = )
             (Array.map corr_bits (Array.sub full prefix (Array.length full - prefix)))
             (Array.map corr_bits
                (Array.sub resumed prefix (Array.length resumed - prefix)))))

(* --- fused CV vs per-fold CV --------------------------------------- *)

let prop_fused_cv_bitwise solver seed =
  let rng, basis, pts, g = random_setting seed in
  let src_s = P.streamed basis pts in
  let src_d = P.dense g in
  let f = sparse_response rng src_s in
  let select ~fused pool src =
    let r =
      match solver with
      | `Omp ->
          Rsm.Select.omp_p ~pool ~fused
            (Randkit.Prng.create (seed + 1))
            ~max_lambda:5 src f
      | `Star ->
          Rsm.Select.star_p ~pool ~fused
            (Randkit.Prng.create (seed + 1))
            ~max_lambda:5 src f
    in
    (r.Rsm.Select.lambda, Array.copy r.Rsm.Select.curve,
     model_bits r.Rsm.Select.model)
  in
  List.iter
    (fun src ->
      let name = if P.is_streamed src then "streamed" else "dense" in
      let results =
        List.map
          (fun d ->
            Parallel.Pool.with_pool ~domains:d (fun pool ->
                (select ~fused:true pool src, select ~fused:false pool src)))
          [ 1; 2 ]
      in
      List.iter
        (fun (fused, perfold) ->
          check_bool
            (Printf.sprintf "%s fused CV == per-fold CV" name)
            true (fused = perfold))
        results;
      all_equal (Printf.sprintf "%s fused CV across domains" name) results)
    [ src_d; src_s ];
  true

let test_batch_fold_curves () =
  let rng = Randkit.Prng.create 5 in
  let plan = Stat.Crossval.make_plan rng ~n:20 ~folds:4 in
  let curve_of q ~train ~held_out =
    [| float_of_int (q + Array.length train); float_of_int (Array.length held_out) |]
  in
  let reference =
    Stat.Crossval.run_fold_curves plan ~fit_curve:curve_of
  in
  let batched =
    Stat.Crossval.run_fold_curves_batch plan ~fit_curves:(fun pending ->
        Array.map (fun (q, train, held_out) -> curve_of q ~train ~held_out)
          pending)
  in
  check_bool "batched == per-fold" true (reference = batched);
  (* With a cache covering fold 1, the batch must only see the others. *)
  let cache =
    Stat.Crossval.
      {
        load = (fun q -> if q = 1 then Some reference.(1) else None);
        store = (fun _ _ -> ());
      }
  in
  let seen = ref [] in
  let cached =
    Stat.Crossval.run_fold_curves_batch ~cache plan ~fit_curves:(fun pending ->
        seen := Array.to_list (Array.map (fun (q, _, _) -> q) pending);
        Array.map (fun (q, train, held_out) -> curve_of q ~train ~held_out)
          pending)
  in
  check_bool "cached fold skipped" true (!seen = [ 0; 2; 3 ]);
  check_bool "cached batch == per-fold" true (reference = cached);
  check_raises_invalid "curve count mismatch" (fun () ->
      ignore
        (Stat.Crossval.run_fold_curves_batch plan ~fit_curves:(fun _ -> [||])))

(* --- screen_refit -------------------------------------------------- *)

let test_screen_refit_matches_cold () =
  let rng, _, _, g = random_setting 33 in
  let src = P.dense g in
  let f = sparse_response rng src in
  let k = P.rows src in
  Parallel.Pool.with_pool ~domains:2 (fun pool ->
      let model = Rsm.Omp.fit_p ~pool src f ~lambda:3 in
      (* Clean residuals: nothing to drop, the model comes back as-is. *)
      let same, none = Robust.Pipeline.screen_refit src f model in
      check_bool "clean data drops nothing" true (none = [||]);
      check_bool "clean data keeps the model" true
        (model_bits same = model_bits model);
      (* Corrupt three responses far outside the residual bulk. *)
      let f2 = Array.copy f in
      let bad = [| 2; 7; k - 1 |] in
      Array.iter (fun i -> f2.(i) <- f2.(i) +. 1e4) bad;
      let refit, dropped = Robust.Pipeline.screen_refit src f2 model in
      check_bool "corrupted rows dropped" true (dropped = bad);
      check_bool "support preserved" true
        (refit.Rsm.Model.support = model.Rsm.Model.support);
      check_bool "rescreen note attached" true
        (Array.exists
           (fun n ->
             String.length n >= 8 && String.sub n 0 8 = "rescreen")
           (Rsm.Model.notes refit));
      (* Reference: cold LS refit of the same support on the kept rows. *)
      let kept =
        Array.of_list
          (List.filter (fun i -> not (Array.mem i bad)) (List.init k Fun.id))
      in
      let cols =
        Array.map
          (fun j ->
            let col = P.column src j in
            Array.map (fun i -> col.(i)) kept)
          model.Rsm.Model.support
      in
      let f_kept = Array.map (fun i -> f2.(i)) kept in
      let reference, _ = Rsm.Refit.solve_cols cols f_kept in
      Array.iteri
        (fun i c ->
          if rel_gap c reference.(i) > 1e-8 then
            Alcotest.failf
              "downdate refit coeff %d: %.17g vs cold %.17g (rel %.2e)" i c
              reference.(i)
              (rel_gap c reference.(i)))
        refit.Rsm.Model.coeffs)

let test_screen_refit_too_few_rows () =
  (* A support wider than the surviving row count: the refit must keep
     the original model and say why. Only a minority of rows may be
     corrupted (the MAD scale breaks down at 50%), so the support has to
     nearly fill the row count. *)
  let rng = Randkit.Prng.create 9 in
  let k = 6 and m = 5 in
  let g = Randkit.Gaussian.matrix rng k m in
  let src = P.dense g in
  let f =
    Array.init k (fun i ->
        let acc = ref (0.001 *. Randkit.Gaussian.sample rng) in
        for j = 0 to m - 1 do
          acc := !acc +. Linalg.Mat.get g i j
        done;
        !acc)
  in
  Parallel.Pool.with_pool ~domains:1 (fun pool ->
      let model = Rsm.Omp.fit_p ~pool src f ~lambda:m in
      let p = Rsm.Model.nnz model in
      check_int "all columns selected" m p;
      let f2 = Array.copy f in
      f2.(0) <- f2.(0) +. 1e5;
      f2.(1) <- f2.(1) +. 1e5;
      let kept_model, dropped = Robust.Pipeline.screen_refit src f2 model in
      check_bool "flags the corrupted rows" true (dropped = [| 0; 1 |]);
      check_bool "keeps the warm-start coefficients" true
        (kept_model.Rsm.Model.coeffs = model.Rsm.Model.coeffs);
      check_bool "explains why" true
        (Array.exists
           (fun n -> String.length n >= 8 && String.sub n 0 8 = "rescreen")
           (Rsm.Model.notes kept_model)))

let test_screen_refit_validation () =
  let _, _, _, g = random_setting 3 in
  let src = P.dense g in
  let f = Array.make (P.rows src) 1. in
  let model =
    Rsm.Model.make ~basis_size:(P.cols src) ~support:[| 0 |] ~coeffs:[| 1. |]
  in
  check_raises_invalid "bad threshold" (fun () ->
      Robust.Pipeline.screen_refit ~threshold:0. src f model);
  check_raises_invalid "length mismatch" (fun () ->
      Robust.Pipeline.screen_refit src [| 1. |] model)

(* --- Inc unit behavior --------------------------------------------- *)

let test_inc_unit () =
  let _, _, _, g = random_setting 13 in
  let src = P.dense g in
  let k = P.rows src in
  let r = Array.init k (fun i -> float_of_int (i + 1)) in
  check_raises_invalid "negative refresh" (fun () ->
      CS.Inc.create ~refresh:(-1) src r);
  let inc = CS.Inc.create ~refresh:2 src r in
  check_bool "starts from an exact sweep" true
    (CS.Inc.correlations inc = CS.gram_tr src r);
  check_int "no cached grams yet" 0 (CS.Inc.cached inc);
  check_raises_invalid "apply_deltas before ensure_gram" (fun () ->
      CS.Inc.apply_deltas inc [| (0, 0.5) |]);
  CS.Inc.ensure_gram inc 0 (P.column src 0);
  check_int "one cached gram" 1 (CS.Inc.cached inc);
  CS.Inc.ensure_gram inc 0 (P.column src 0);
  check_int "ensure_gram is idempotent" 1 (CS.Inc.cached inc);
  check_bool "not due before any step" false (CS.Inc.due inc);
  CS.Inc.note_step inc;
  CS.Inc.note_step inc;
  check_bool "due after the cadence" true (CS.Inc.due inc);
  CS.Inc.refresh inc r;
  check_bool "refresh resets the cadence" false (CS.Inc.due inc);
  check_raises_invalid "skip length" (fun () ->
      CS.Inc.argmax_abs ~skip:[| false |] inc);
  let skip = Array.make (P.cols src) false in
  check_bool "Inc argmax == exact argmax on a fresh state" true
    (CS.Inc.argmax_abs ~skip inc = CS.argmax_abs ~skip src r)

let test_sweep_of_string () =
  check_bool "exact round-trips" true
    (CS.sweep_of_string (CS.sweep_to_string CS.Exact) = Some CS.Exact);
  (* The string form carries the mode, not the cadence: parsing always
     yields the default refresh. *)
  check_bool "incremental round-trips to the default cadence" true
    (CS.sweep_of_string (CS.sweep_to_string (CS.incremental ~refresh:7 ()))
    = Some (CS.incremental ()));
  check_bool "garbage rejected" true (CS.sweep_of_string "nope" = None)

let seed_gen = QCheck.int_range 1 10_000

let suite =
  ( "sweep",
    [
      case "downdate_row == refactorize" test_downdate_matches_refactor;
      case "downdate_row raises when under-determined"
        test_downdate_raises_when_underdetermined;
      case "downdate_row validates length" test_downdate_validates_length;
      case "multi-sweep validation" test_multi_validation;
      case "all-identical dictionary terminates annotated"
        test_all_banned_terminates;
      case "incremental LAR resume bitwise"
        test_incremental_lar_resume_bitwise;
      case "batched fold curves == per-fold" test_batch_fold_curves;
      case "screen_refit == cold refit" test_screen_refit_matches_cold;
      case "screen_refit keeps model when rows run out"
        test_screen_refit_too_few_rows;
      case "screen_refit validation" test_screen_refit_validation;
      case "Inc unit behavior" test_inc_unit;
      case "sweep mode strings" test_sweep_of_string;
      qtest ~count:10 "fused multi == independent sweeps" seed_gen
        prop_multi_bitwise;
      qtest ~count:8 "OMP incremental == exact" seed_gen
        (prop_incremental_parity `Omp);
      qtest ~count:8 "STAR incremental == exact" seed_gen
        (prop_incremental_parity `Star);
      qtest ~count:8 "LAR incremental == exact" seed_gen
        (prop_incremental_parity `Lar);
      qtest ~count:8 "LASSO incremental == exact" seed_gen
        (prop_incremental_parity `Lasso);
      qtest ~count:6 "banned columns: incremental == exact" seed_gen
        prop_incremental_parity_with_bans;
      qtest ~count:6 "OMP fused CV == per-fold CV" seed_gen
        (prop_fused_cv_bitwise `Omp);
      qtest ~count:6 "STAR fused CV == per-fold CV" seed_gen
        (prop_fused_cv_bitwise `Star);
    ] )
