(* The fault-tolerant pipeline: injection determinism, retry accounting,
   the MAD screen, the numerical fallback ladder, checkpoint/resume and
   the structured error surface. *)
open Test_util
module Simulator = Circuit.Simulator

let pool_counts = [ 1; 2; 4 ]

let small_sim () =
  let amp = Circuit.Opamp.build ~n_parasitics:15 () in
  (Circuit.Opamp.simulator amp Circuit.Opamp.Offset, Circuit.Opamp.dim amp)

let faults_10pct =
  Simulator.fault_plan ~rate:0.10 ~outlier_scale:500. ()

(* --- fault injection and retry ------------------------------------- *)

let test_no_faults_matches_run () =
  let sim, _ = small_sim () in
  let d = Simulator.run sim (Randkit.Prng.create 42) ~k:60 in
  let d', report =
    Simulator.run_robust ~faults:Simulator.no_faults
      sim (Randkit.Prng.create 42) ~k:60
  in
  check_bool "points bitwise" true (d.Simulator.points = d'.Simulator.points);
  check_bool "values bitwise" true (d.Simulator.values = d'.Simulator.values);
  check_int "all delivered" 60 report.Simulator.delivered;
  check_int "no faults" 0 report.Simulator.faults_injected;
  check_int "no retries" 0 report.Simulator.retries

let test_robust_run_pool_parity () =
  (* The faulty run must be bitwise identical at every domain count and
     without a pool: fault decisions are split per sample up front. *)
  let sim, _ = small_sim () in
  let sequential =
    Simulator.run_robust ~faults:faults_10pct
      sim (Randkit.Prng.create 7) ~k:80
  in
  List.iter
    (fun domains ->
      Parallel.Pool.with_pool ~domains (fun pool ->
          let d, r =
            Simulator.run_robust ~pool ~faults:faults_10pct
              sim (Randkit.Prng.create 7) ~k:80
          in
          let d0, r0 = sequential in
          check_bool
            (Printf.sprintf "points bitwise (domains=%d)" domains)
            true (d.Simulator.points = d0.Simulator.points);
          check_bool
            (Printf.sprintf "values bitwise (domains=%d)" domains)
            true (d.Simulator.values = d0.Simulator.values);
          check_bool
            (Printf.sprintf "report identical (domains=%d)" domains)
            true (r = r0)))
    pool_counts

let test_retry_recovers_transients () =
  (* A transient-only fault mix: every fault is retryable, so with
     enough attempts everything is delivered; with none, the abandoned
     samples are recorded rather than raised. *)
  let sim, _ = small_sim () in
  let faults =
    Simulator.fault_plan ~rate:0.3
      ~mix:[| (Simulator.Transient, 1.) |] ()
  in
  let _, with_retry =
    Simulator.run_robust ~faults
      ~retry:(Simulator.retry_policy ~max_attempts:8 ())
      sim (Randkit.Prng.create 11) ~k:100
  in
  check_int "retries recover everything" 100 with_retry.Simulator.delivered;
  check_bool "faults were actually injected" true
    (with_retry.Simulator.faults_injected > 0);
  check_bool "retries were charged" true (with_retry.Simulator.retries > 0);
  check_bool "backoff accounted" true
    (with_retry.Simulator.accounted_extra_seconds > 0.);
  let d, no_retry =
    Simulator.run_robust ~faults ~retry:Simulator.no_retry
      sim (Randkit.Prng.create 11) ~k:100
  in
  let abandoned = Array.length no_retry.Simulator.failed in
  check_bool "some samples abandoned without retry" true (abandoned > 0);
  check_int "delivered + failed = requested" 100
    (no_retry.Simulator.delivered + abandoned);
  check_int "dataset matches the report" no_retry.Simulator.delivered
    (Simulator.dataset_size d)

let test_fault_accounting_consistent () =
  let sim, _ = small_sim () in
  let _, r =
    Simulator.run_robust ~faults:faults_10pct
      ~retry:(Simulator.retry_policy ())
      sim (Randkit.Prng.create 3) ~k:200
  in
  check_int "fault modes sum to the total"
    r.Simulator.faults_injected
    (r.Simulator.nonfinite_faults + r.Simulator.outliers_injected
    + r.Simulator.transient_faults + r.Simulator.hang_faults);
  check_bool "summary is one line" true
    (not (String.contains (Simulator.report_summary r) '\n'))

let test_fault_plan_validation () =
  check_raises_invalid "rate 1.0" (fun () ->
      Simulator.fault_plan ~rate:1.0 ());
  check_raises_invalid "negative rate" (fun () ->
      Simulator.fault_plan ~rate:(-0.1) ());
  check_raises_invalid "empty mix" (fun () ->
      Simulator.fault_plan ~mix:[||] ());
  check_raises_invalid "zero attempts" (fun () ->
      Simulator.retry_policy ~max_attempts:0 ())

(* --- sample screening ---------------------------------------------- *)

let screen_dataset values =
  {
    Simulator.points = Array.map (fun _ -> [| 0.5; -0.5 |]) values;
    values;
  }

let screen_ok ?threshold d =
  match Robust.Screen.screen ?threshold d with
  | Ok r -> r
  | Error e -> Alcotest.fail ("screen failed: " ^ Robust.Error.to_string e)

let test_screen_drops_non_finite () =
  let d = screen_dataset [| 1.0; Float.nan; 2.0; Float.infinity; 1.5 |] in
  d.Simulator.points.(2) <- [| Float.nan; 0. |];
  let kept, report = screen_ok d in
  check_int "kept count" 2 (Simulator.dataset_size kept);
  check_bool "kept indices" true (report.Robust.Screen.kept = [| 0; 4 |]);
  let reasons = Array.map snd report.Robust.Screen.dropped in
  check_bool "NaN value dropped" true
    (Array.exists (( = ) Robust.Screen.Non_finite_value) reasons);
  check_bool "NaN point dropped" true
    (Array.exists (( = ) Robust.Screen.Non_finite_point) reasons);
  check_int "three dropped" 3 (Array.length report.Robust.Screen.dropped)

let test_screen_drops_outlier () =
  (* A tight bulk plus one absurd value: the robust z-score must flag
     exactly the absurd one, and the recorded z must cross the cut. *)
  let bulk = Array.init 40 (fun i -> float_of_int (i mod 7) /. 10.) in
  let values = Array.append bulk [| 1e6 |] in
  let kept, report = screen_ok (screen_dataset values) in
  check_int "one dropped" 1 (Array.length report.Robust.Screen.dropped);
  let idx, reason = report.Robust.Screen.dropped.(0) in
  check_int "the outlier row" 40 idx;
  (match reason with
  | Robust.Screen.Outlier z ->
      check_bool "z beyond threshold" true
        (z > report.Robust.Screen.threshold)
  | _ -> Alcotest.fail "expected an Outlier reason");
  check_int "bulk kept" 40 (Simulator.dataset_size kept);
  check_bool "summary mentions the drop" true
    (String.length (Robust.Screen.report_summary report) > 0)

let test_screen_zero_spread_guard () =
  (* Over half the responses identical -> MAD = 0: no finite row can be
     z-scored, so the outlier screen must stand down rather than drop
     everything that differs from the median. *)
  let values = Array.append (Array.make 30 5.0) [| 999.0; Float.nan |] in
  let kept, report = screen_ok (screen_dataset values) in
  check_float ~eps:0. "spread is zero" 0. report.Robust.Screen.spread;
  check_int "only the NaN dropped" 1 (Array.length report.Robust.Screen.dropped);
  check_int "the finite oddball survives" 31 (Simulator.dataset_size kept)

let test_screen_validation () =
  check_raises_invalid "zero threshold" (fun () ->
      Robust.Screen.screen ~threshold:0. (screen_dataset [| 1. |]));
  check_raises_invalid "empty dataset" (fun () ->
      Robust.Screen.screen (screen_dataset [||]))

(* --- numerical fallback ladder ------------------------------------- *)

let test_refit_direct_on_clean_cols () =
  let c0 = [| 1.; 0.; 0.; 1. |] and c1 = [| 0.; 1.; 1.; 0. |] in
  let f = [| 2.; -3.; -3.; 2. |] in
  let x, rung = Rsm.Refit.solve_cols [| c0; c1 |] f in
  check_bool "clean columns stay on the fast path" true
    (rung = Rsm.Refit.Direct);
  check_float "x0" 2. x.(0);
  check_float "x1" (-3.) x.(1);
  check_bool "no note for Direct" true (Rsm.Refit.note rung = None)

let test_refit_ladder_on_duplicate_cols () =
  (* An exactly duplicated column makes the Gram matrix singular:
     Cholesky must fail, and whichever rung answers must still produce
     a least-squares-quality residual. *)
  let rng = Randkit.Prng.create 5 in
  let c0 = Randkit.Gaussian.vector rng 12 in
  let f = Array.map (fun v -> 3. *. v) c0 in
  let x, rung = Rsm.Refit.solve_cols [| c0; Array.copy c0; |] f in
  check_bool "a fallback rung fired" true (rung <> Rsm.Refit.Direct);
  (match Rsm.Refit.note rung with
  | Some note -> check_bool "note non-empty" true (String.length note > 0)
  | None -> Alcotest.fail "fallback must carry a note");
  let residual =
    Array.mapi (fun i fi -> fi -. ((x.(0) +. x.(1)) *. c0.(i))) f
  in
  check_bool "residual still tiny" true (Linalg.Vec.nrm2 residual < 1e-6)

let duplicate_column_problem () =
  (* Two identical columns and a response that is not exhausted by one
     of them: after the first selection the other duplicate is the only
     column left, so OMP is forced into the singular Gram matrix. *)
  let rng = Randkit.Prng.create 17 in
  let c = Randkit.Gaussian.vector rng 20 in
  let f =
    Array.mapi (fun i v -> (3. *. v) +. (0.05 *. float_of_int (i mod 3))) c
  in
  (Linalg.Mat.init 20 2 (fun i _ -> c.(i)), f)

let test_omp_on_singular_stop_vs_fallback () =
  (* [tol = 0.] disables the relative-correlation stop so the sweep is
     forced to hand the duplicate to the Gram update. *)
  let g, f = duplicate_column_problem () in
  let stop_path = Rsm.Omp.path ~tol:0. g f ~max_lambda:2 in
  check_int "`Stop truncates the path at the singular step" 1
    (Array.length stop_path);
  let fb_path = Rsm.Omp.path ~tol:0. ~on_singular:`Fallback g f ~max_lambda:2 in
  check_int "`Fallback completes the path" 2 (Array.length fb_path);
  let m = fb_path.(1).Rsm.Omp.model in
  check_bool "degradation recorded in the model notes" true
    (Array.length (Rsm.Model.notes m) > 0);
  check_bool "degraded fit is still finite" true
    (Array.for_all Float.is_finite m.Rsm.Model.coeffs)

let test_lars_on_singular_bans_column () =
  let g, f = duplicate_column_problem () in
  (* Both policies must terminate; `Fallback additionally records the
     ban in the final model's notes. *)
  let r_stop = Rsm.Lars.fit ~tol:0. g f ~lambda:2 in
  check_bool "`Stop returns a finite model" true
    (Array.for_all Float.is_finite r_stop.Rsm.Model.coeffs);
  let r = Rsm.Lars.fit ~tol:0. ~on_singular:`Fallback g f ~lambda:2 in
  check_bool "`Fallback returns a finite model" true
    (Array.for_all Float.is_finite r.Rsm.Model.coeffs);
  check_bool "ban recorded in notes" true
    (Array.exists
       (fun n ->
         (* The banned-column note names the lars solver. *)
         String.length n >= 5 && String.sub n 0 5 = "lars:")
       (Rsm.Model.notes r))

(* --- checkpoint / resume ------------------------------------------- *)

let test_checkpoint_string_roundtrip () =
  let c =
    {
      Rsm.Serialize.Checkpoint.solver = "omp";
      k = 120;
      m = 300;
      scale = 17.25;
      support = [| 4; 0; 299 |];
    }
  in
  (match Rsm.Serialize.Checkpoint.of_string
           (Rsm.Serialize.Checkpoint.to_string c)
   with
  | Ok c' -> check_bool "record round-trips" true (c = c')
  | Error e -> Alcotest.failf "roundtrip: %s" e);
  (match Rsm.Serialize.Checkpoint.of_string "not-a-checkpoint" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage header must not parse");
  let tmp = Filename.temp_file "ckpt" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Rsm.Serialize.Checkpoint.save tmp c;
      match Rsm.Serialize.Checkpoint.load tmp with
      | Ok c' -> check_bool "file round-trips" true (c = c')
      | Error e -> Alcotest.failf "load: %s" e)

let sparse_problem ~k ~m seed =
  let rng = Randkit.Prng.create seed in
  let g = Randkit.Gaussian.matrix rng k m in
  let f =
    Array.init k (fun i ->
        (2. *. Linalg.Mat.get g i 1)
        -. (1.5 *. Linalg.Mat.get g i (m / 2))
        +. Linalg.Mat.get g i (m - 1)
        +. (0.05 *. Randkit.Gaussian.sample rng))
  in
  (Polybasis.Design.Provider.dense g, f)

let resume_bitwise ~fit_p ~interrupted_path ~lambda ~kill_at src f =
  let full = fit_p ?resume:None src f ~lambda in
  let last = ref None in
  interrupted_path ~on_checkpoint:(fun c -> last := Some c) ~max_lambda:kill_at
    src f;
  match !last with
  | None -> Alcotest.fail "no checkpoint was emitted"
  | Some ckpt ->
      let resumed = fit_p ?resume:(Some ckpt) src f ~lambda in
      check_bool "resumed model is bitwise identical" true
        (Rsm.Serialize.to_string resumed = Rsm.Serialize.to_string full)

let test_omp_resume_bitwise () =
  let src, f = sparse_problem ~k:40 ~m:25 901 in
  resume_bitwise
    ~fit_p:(fun ?resume src f ~lambda -> Rsm.Omp.fit_p ?resume src f ~lambda)
    ~interrupted_path:(fun ~on_checkpoint ~max_lambda src f ->
      ignore (Rsm.Omp.path_p ~checkpoint_every:2 ~on_checkpoint src f ~max_lambda))
    ~lambda:6 ~kill_at:4 src f

let test_star_resume_bitwise () =
  let src, f = sparse_problem ~k:40 ~m:25 902 in
  resume_bitwise
    ~fit_p:(fun ?resume src f ~lambda -> Rsm.Star.fit_p ?resume src f ~lambda)
    ~interrupted_path:(fun ~on_checkpoint ~max_lambda src f ->
      ignore
        (Rsm.Star.path_p ~checkpoint_every:2 ~on_checkpoint src f ~max_lambda))
    ~lambda:6 ~kill_at:4 src f

let test_resume_validation () =
  let src, f = sparse_problem ~k:40 ~m:25 903 in
  let ckpt solver support =
    { Rsm.Serialize.Checkpoint.solver; k = 40; m = 25; scale = 1.; support }
  in
  check_raises_invalid "wrong solver tag" (fun () ->
      Rsm.Omp.fit_p ~resume:(ckpt "star" [| 0 |]) src f ~lambda:4);
  check_raises_invalid "wrong shape" (fun () ->
      Rsm.Omp.fit_p
        ~resume:{ (ckpt "omp" [| 0 |]) with Rsm.Serialize.Checkpoint.m = 99 }
        src f ~lambda:4);
  check_raises_invalid "duplicate support" (fun () ->
      Rsm.Omp.fit_p ~resume:(ckpt "omp" [| 3; 3 |]) src f ~lambda:4);
  check_raises_invalid "support out of range" (fun () ->
      Rsm.Omp.fit_p ~resume:(ckpt "omp" [| 25 |]) src f ~lambda:4)

let test_terminal_checkpoint_emitted () =
  (* A path whose length is not a multiple of the cadence must still
     leave a checkpoint of its completed self; and a callback with the
     cadence off gets exactly the terminal one. *)
  let src, f = sparse_problem ~k:40 ~m:25 908 in
  let terminal name path_with =
    let supports = ref [] in
    path_with ~on_checkpoint:(fun (c : Rsm.Serialize.Checkpoint.t) ->
        supports := Array.length c.Rsm.Serialize.Checkpoint.support :: !supports);
    match !supports with
    | last :: _ -> check_int (name ^ ": terminal checkpoint is full") 5 last
    | [] -> Alcotest.fail (name ^ ": no checkpoint emitted")
  in
  terminal "omp" (fun ~on_checkpoint ->
      ignore
        (Rsm.Omp.path_p ~checkpoint_every:2 ~on_checkpoint src f ~max_lambda:5));
  terminal "star" (fun ~on_checkpoint ->
      ignore
        (Rsm.Star.path_p ~checkpoint_every:2 ~on_checkpoint src f
           ~max_lambda:5));
  let count = ref 0 in
  ignore (Rsm.Omp.path_p ~on_checkpoint:(fun _ -> incr count) src f ~max_lambda:5);
  check_int "cadence off: exactly the terminal checkpoint" 1 !count

(* --- LARS checkpoint / resume -------------------------------------- *)

module LarsCkpt = Rsm.Serialize.Checkpoint.Lars
module CvCkpt = Rsm.Serialize.Checkpoint.Cv

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let near_tie_ban_problem seed =
  (* Column 1 duplicates column 0 exactly; column 2 carries real signal.
     The duplicate ties with its twin at every enter scan, so under
     `Fallback it is banned the moment it tries to enter — with the
     true entrant already sitting at the correlation tie. *)
  let k = 20 in
  let rng = Randkit.Prng.create seed in
  let c0 = Randkit.Gaussian.vector rng k in
  let c2 = Randkit.Gaussian.vector rng k in
  let g =
    Linalg.Mat.init k 3 (fun i j ->
        match j with 0 | 1 -> c0.(i) | _ -> c2.(i))
  in
  let f = Array.init k (fun i -> (3. *. c0.(i)) +. c2.(i)) in
  (g, f)

let test_lars_ban_zero_step_regression () =
  (* Regression for the two banned-column bugs: the γ scan letting a
     banned column bound the step, and the ban iteration advancing with
     an unbounded γ (the true entrant already ties, so its candidate ~0
     is rejected by the scan).  Either bug leaves the walk
     non-equicorrelated: it oscillates forever instead of reaching the
     LS point of the planted support {0, 2}. *)
  List.iter
    (fun seed ->
      let tag msg = Printf.sprintf "seed %d: %s" seed msg in
      let g, f = near_tie_ban_problem seed in
      let steps =
        Rsm.Lars.path ~tol:0. ~on_singular:`Fallback g f ~max_steps:8
      in
      let last = steps.(Array.length steps - 1) in
      check_bool (tag "path reaches the LS point") true
        (last.Rsm.Lars.max_corr < 1e-8);
      check_bool (tag "support is the planted {0,2}") true
        (last.Rsm.Lars.model.Rsm.Model.support = [| 0; 2 |]);
      check_bool (tag "ban recorded in the notes") true
        (Array.exists
           (( = ) "lars: banned dependent column 1")
           (Rsm.Model.notes last.Rsm.Lars.model));
      (* The ban iteration itself must not move the coefficients. *)
      let ban_idx = ref (-1) in
      Array.iteri
        (fun i (s : Rsm.Lars.step) ->
          if
            !ban_idx < 0
            && Array.length (Rsm.Model.notes s.Rsm.Lars.model) > 0
          then ban_idx := i)
        steps;
      check_bool (tag "ban happens after the first entry") true (!ban_idx > 0);
      check_vec ~eps:0. (tag "ban step is zero-length")
        (Rsm.Model.to_dense steps.(!ban_idx - 1).Rsm.Lars.model)
        (Rsm.Model.to_dense steps.(!ban_idx).Rsm.Lars.model))
    [ 4; 5 ]

let test_lars_checkpoint_roundtrip () =
  (* A consistent little walk: add 3, ban 2 (zero-length step), add 0,
     then a lasso drop of 3 — final active {0}. *)
  let c =
    {
      LarsCkpt.mode = "lasso";
      k = 20;
      m = 6;
      scale = 4.5;
      active = [| 0 |];
      signs = [| -1. |];
      banned = [| 2 |];
      events =
        [|
          { LarsCkpt.added = 3; banned = -1; dropped = -1; gamma = 0.25 };
          { LarsCkpt.added = -1; banned = 2; dropped = -1; gamma = 0. };
          { LarsCkpt.added = 0; banned = -1; dropped = -1; gamma = 0.125 };
          { LarsCkpt.added = -1; banned = -1; dropped = 3; gamma = 1e-3 };
        |];
      notes = [| "lars: banned dependent column 2" |];
      mu_digest = LarsCkpt.digest [| 0.5; -1.25 |];
      beta_digest = LarsCkpt.digest [| 0.; 3.5 |];
    }
  in
  (match LarsCkpt.of_string (LarsCkpt.to_string c) with
  | Ok c' -> check_bool "lars record round-trips" true (c = c')
  | Error e -> Alcotest.failf "lars roundtrip: %s" e);
  (match LarsCkpt.of_string "not-a-checkpoint" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse");
  (match
     LarsCkpt.of_string (Rsm.Serialize.Checkpoint.to_string
        { Rsm.Serialize.Checkpoint.solver = "omp"; k = 20; m = 6; scale = 1.;
          support = [| 0 |] })
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a v1 checkpoint must not parse as a LARS log");
  let tmp = Filename.temp_file "lars-ckpt" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      LarsCkpt.save tmp c;
      match LarsCkpt.load tmp with
      | Ok c' -> check_bool "lars file round-trips" true (c = c')
      | Error e -> Alcotest.failf "lars load: %s" e)

let test_cv_checkpoint_roundtrip () =
  check_bool "fold file naming" true
    (CvCkpt.fold_file "/tmp/x/cv" 3 = "/tmp/x/cv.fold3");
  let c =
    {
      CvCkpt.fold = 1;
      folds = 4;
      n = 80;
      max_lambda = 6;
      plan_digest = CvCkpt.plan_digest [| 0; 1; 2; 3; 0; 1 |];
      curve = [| 0.5; 0.25; 0.125; 0.1; 0.25; 0.5 |];
    }
  in
  (match CvCkpt.of_string (CvCkpt.to_string c) with
  | Ok c' -> check_bool "cv record round-trips" true (c = c')
  | Error e -> Alcotest.failf "cv roundtrip: %s" e);
  (match CvCkpt.of_string "rsm-cv-ckpt 9\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown cv version must not parse");
  let tmp = Filename.temp_file "cv-ckpt" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      CvCkpt.save tmp c;
      match CvCkpt.load tmp with
      | Ok c' -> check_bool "cv file round-trips" true (c = c')
      | Error e -> Alcotest.failf "cv load: %s" e)

(* Hex floats + the serialized model make the comparison bitwise. *)
let lars_steps_fingerprint steps =
  String.concat "\n"
    (Array.to_list
       (Array.map
          (fun (s : Rsm.Lars.step) ->
            Printf.sprintf "%d %d %h %s"
              (match s.Rsm.Lars.added with Some j -> j | None -> -1)
              (match s.Rsm.Lars.dropped with Some j -> j | None -> -1)
              s.Rsm.Lars.max_corr
              (Rsm.Serialize.to_string s.Rsm.Lars.model))
          steps))

let test_lars_resume_bitwise () =
  let src, f = sparse_problem ~k:40 ~m:25 904 in
  List.iter
    (fun mode ->
      let full =
        Rsm.Lars.path_p ~mode ~on_singular:`Fallback src f ~max_steps:8
      in
      let ckpts = ref [] in
      ignore
        (Rsm.Lars.path_p ~mode ~on_singular:`Fallback ~checkpoint_every:2
           ~on_checkpoint:(fun c -> ckpts := c :: !ckpts)
           src f ~max_steps:8);
      (* "Kill" after the first cadence checkpoint (two events in). *)
      let kill = List.hd (List.rev !ckpts) in
      check_int "kill point is mid-path" 2 (Array.length kill.LarsCkpt.events);
      let resumed =
        Rsm.Lars.path_p ~mode ~on_singular:`Fallback ~resume:kill src f
          ~max_steps:8
      in
      check_bool "resumed path is bitwise identical" true
        (lars_steps_fingerprint resumed = lars_steps_fingerprint full);
      let m_full =
        Rsm.Lars.fit_p ~mode ~on_singular:`Fallback src f ~lambda:3
      in
      let m_res =
        Rsm.Lars.fit_p ~mode ~on_singular:`Fallback ~resume:kill src f
          ~lambda:3
      in
      check_bool "resumed fit is bitwise identical" true
        (Rsm.Serialize.to_string m_res = Rsm.Serialize.to_string m_full))
    [ Rsm.Lars.Lar; Rsm.Lars.Lasso ]

let test_lars_resume_with_ban_event () =
  (* The event log must replay a ban — a zero-length step — exactly. *)
  let g, f = near_tie_ban_problem 4 in
  let src = Polybasis.Design.Provider.dense g in
  let full =
    Rsm.Lars.path_p ~tol:0. ~on_singular:`Fallback src f ~max_steps:6
  in
  let ckpts = ref [] in
  ignore
    (Rsm.Lars.path_p ~tol:0. ~on_singular:`Fallback ~checkpoint_every:1
       ~on_checkpoint:(fun c -> ckpts := c :: !ckpts)
       src f ~max_steps:6);
  let ordered = List.rev !ckpts in
  (* The second checkpoint sits right after the ban's zero-length step. *)
  let kill = List.nth ordered 1 in
  check_bool "checkpoint carries the ban" true
    (kill.LarsCkpt.banned = [| 1 |]
    && Array.exists (fun (e : LarsCkpt.event) -> e.LarsCkpt.banned = 1)
         kill.LarsCkpt.events);
  let resumed =
    Rsm.Lars.path_p ~tol:0. ~on_singular:`Fallback ~resume:kill src f
      ~max_steps:6
  in
  check_bool "path with a replayed ban is bitwise identical" true
    (lars_steps_fingerprint resumed = lars_steps_fingerprint full)

let test_lars_resume_validation () =
  let src, f = sparse_problem ~k:40 ~m:25 905 in
  let ck = ref None in
  ignore
    (Rsm.Lars.path_p ~on_singular:`Fallback ~checkpoint_every:2
       ~on_checkpoint:(fun c -> ck := Some c)
       src f ~max_steps:4);
  let ck = Option.get !ck in
  check_raises_invalid "wrong mode" (fun () ->
      Rsm.Lars.path_p ~mode:Rsm.Lars.Lasso ~on_singular:`Fallback ~resume:ck
        src f ~max_steps:8);
  check_raises_invalid "wrong shape" (fun () ->
      Rsm.Lars.path_p ~on_singular:`Fallback
        ~resume:{ ck with LarsCkpt.m = 99 }
        src f ~max_steps:8);
  check_raises_invalid "different data" (fun () ->
      let src2, _ = sparse_problem ~k:40 ~m:25 906 in
      Rsm.Lars.path_p ~on_singular:`Fallback ~resume:ck src2 f ~max_steps:8);
  let g, fb = near_tie_ban_problem 4 in
  let srcb = Polybasis.Design.Provider.dense g in
  let ckb = ref None in
  ignore
    (Rsm.Lars.path_p ~tol:0. ~on_singular:`Fallback ~checkpoint_every:2
       ~on_checkpoint:(fun c -> ckb := Some c)
       srcb fb ~max_steps:4);
  check_raises_invalid "ban event under `Stop" (fun () ->
      Rsm.Lars.path_p ~tol:0. ~on_singular:`Stop ~resume:(Option.get !ckb)
        srcb fb ~max_steps:6)

let test_lars_fit_empty_path_note () =
  (* A zero response stops the walk before any step: the fit must say
     so on the returned model instead of handing back a bare zero. *)
  let src, _ = sparse_problem ~k:30 ~m:10 907 in
  let f = Array.make 30 0. in
  let m = Rsm.Lars.fit_p src f ~lambda:3 in
  check_int "no bases selected" 0 (Rsm.Model.nnz m);
  check_bool "note explains the empty model" true
    (Array.exists
       (fun n -> contains n "no model of at most 3 bases")
       (Rsm.Model.notes m))

let test_screen_all_non_finite_error () =
  let d = screen_dataset [| Float.nan; Float.infinity; Float.nan |] in
  (match Robust.Screen.screen d with
  | Error (Robust.Error.Simulation msg) ->
      check_bool "message counts the rows" true (contains msg "3 rows")
  | Error e -> Alcotest.failf "wrong category: %s" (Robust.Error.to_string e)
  | Ok _ -> Alcotest.fail "all-non-finite dataset must not screen Ok");
  (* Belt and braces: a non-finite center prints n/a, never nan. *)
  let r =
    {
      Robust.Screen.total = 3;
      kept = [||];
      dropped = [||];
      center = Float.nan;
      spread = Float.nan;
      threshold = 6.;
    }
  in
  let s = Robust.Screen.report_summary r in
  check_bool "summary prints n/a" true (contains s "n/a");
  check_bool "summary never prints nan" true (not (contains s "nan"))

let with_temp_dir f =
  let dir = Filename.temp_file "rsm-cv" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun fn -> Sys.remove (Filename.concat dir fn))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let select_fingerprint (r : Rsm.Select.result) =
  Printf.sprintf "%d|%s|%s" r.Rsm.Select.lambda
    (String.concat ","
       (Array.to_list (Array.map (Printf.sprintf "%h") r.Rsm.Select.curve)))
    (Rsm.Serialize.to_string r.Rsm.Select.model)

let test_cv_fold_checkpoint_resume () =
  let src, f = sparse_problem ~k:48 ~m:12 909 in
  let run ?checkpoint ?resume () =
    Rsm.Select.omp_p ?checkpoint ?resume ~folds:4
      (Randkit.Prng.create 77)
      ~max_lambda:5 src f
  in
  let full = run () in
  with_temp_dir (fun dir ->
      let base = Filename.concat dir "cv" in
      let ck_run = run ~checkpoint:base () in
      check_bool "checkpointed sweep bitwise equals the plain sweep" true
        (select_fingerprint ck_run = select_fingerprint full);
      for q = 0 to 3 do
        check_bool
          (Printf.sprintf "fold %d checkpoint written" q)
          true
          (Sys.file_exists (CvCkpt.fold_file base q))
      done;
      (* Kill after two folds: later fold files never made it to disk. *)
      Sys.remove (CvCkpt.fold_file base 2);
      Sys.remove (CvCkpt.fold_file base 3);
      let resumed = run ~checkpoint:base ~resume:true () in
      check_bool "resumed sweep bitwise equals the full sweep" true
        (select_fingerprint resumed = select_fingerprint full);
      (* A fold record written under a different plan must be rejected,
         not silently averaged in. *)
      (match CvCkpt.load (CvCkpt.fold_file base 0) with
      | Error e -> Alcotest.failf "reload: %s" e
      | Ok c ->
          CvCkpt.save (CvCkpt.fold_file base 0)
            { c with CvCkpt.plan_digest = Int64.lognot c.CvCkpt.plan_digest });
      check_raises_invalid "foreign plan digest rejected" (fun () ->
          run ~checkpoint:base ~resume:true ()))

let test_model_notes_roundtrip () =
  let m =
    Rsm.Model.make ~basis_size:10 ~support:[| 1; 7 |] ~coeffs:[| 0.5; -2. |]
  in
  let m = Rsm.Model.add_note m "refit: qr fallback" in
  let m = Rsm.Model.add_note m "refit: qr fallback" (* deduplicated *) in
  let m = Rsm.Model.add_note m "lars: banned dependent column 3" in
  check_int "notes deduplicated" 2 (Array.length (Rsm.Model.notes m));
  match Rsm.Serialize.of_string (Rsm.Serialize.to_string m) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok m' ->
      check_bool "notes round-trip through the model file" true
        (Rsm.Model.notes m = Rsm.Model.notes m');
      check_vec ~eps:0. "coefficients exact" (Rsm.Model.to_dense m)
        (Rsm.Model.to_dense m')

(* --- pipeline and errors ------------------------------------------- *)

let test_pipeline_config_validation () =
  let expect_invalid name r =
    match r with
    | Error (Robust.Error.Invalid_input _) -> ()
    | Error e ->
        Alcotest.failf "%s: wrong category %s" name (Robust.Error.to_string e)
    | Ok _ -> Alcotest.failf "%s: expected an error" name
  in
  expect_invalid "samples 0" (Robust.Pipeline.config ~samples:0 ());
  expect_invalid "folds 1" (Robust.Pipeline.config ~folds:1 ());
  expect_invalid "max_lambda 0" (Robust.Pipeline.config ~max_lambda:0 ());
  expect_invalid "threshold 0" (Robust.Pipeline.config ~screen_threshold:0. ());
  expect_invalid "min_samples > samples"
    (Robust.Pipeline.config ~samples:50 ~min_samples:51 ())

let test_pipeline_end_to_end_with_faults () =
  let sim, dim = small_sim () in
  let basis = Polybasis.Basis.constant_linear dim in
  let cfg =
    match
      Robust.Pipeline.config ~samples:150 ~folds:3 ~max_lambda:6
        ~faults:faults_10pct
        ~retry:(Simulator.retry_policy ())
        ~min_samples:75 ()
    with
    | Ok cfg -> cfg
    | Error e -> Alcotest.failf "config: %s" (Robust.Error.to_string e)
  in
  match Robust.Pipeline.fit cfg sim basis (rng ()) with
  | Error e -> Alcotest.failf "fit: %s" (Robust.Error.to_string e)
  | Ok o ->
      let r = o.Robust.Pipeline.run_report in
      check_bool "faults were injected" true (r.Simulator.faults_injected > 0);
      check_bool "survivors above the floor" true
        (Simulator.dataset_size o.Robust.Pipeline.dataset >= 75);
      check_bool "model selected something" true
        (Array.length o.Robust.Pipeline.model.Rsm.Model.support > 0);
      check_bool "coefficients finite" true
        (Array.for_all Float.is_finite o.Robust.Pipeline.model.Rsm.Model.coeffs);
      (match o.Robust.Pipeline.screen_report with
      | None -> Alcotest.fail "screening was on: report expected"
      | Some s ->
          check_int "screen saw every delivered row"
            r.Simulator.delivered s.Robust.Screen.total);
      check_bool "summary non-empty" true
        (String.length (Robust.Pipeline.outcome_summary o) > 0)

let test_pipeline_min_samples_failure () =
  let sim, dim = small_sim () in
  let basis = Polybasis.Basis.constant_linear dim in
  let cfg =
    match
      Robust.Pipeline.config ~samples:40
        ~faults:(Simulator.fault_plan ~rate:0.5
                   ~mix:[| (Simulator.Transient, 1.) |] ())
        ~retry:Simulator.no_retry ~min_samples:40 ()
    with
    | Ok cfg -> cfg
    | Error e -> Alcotest.failf "config: %s" (Robust.Error.to_string e)
  in
  match Robust.Pipeline.fit cfg sim basis (rng ()) with
  | Error (Robust.Error.Simulation msg) ->
      check_bool "diagnostic names the shortfall" true (String.length msg > 0)
  | Error e ->
      Alcotest.failf "wrong category: %s" (Robust.Error.to_string e)
  | Ok _ -> Alcotest.fail "expected a Simulation error"

let test_error_classification () =
  let open Robust.Error in
  (match of_exn (Invalid_argument "x") with
  | Invalid_input _ -> ()
  | e -> Alcotest.failf "Invalid_argument -> %s" (to_string e));
  (match of_exn (Sys_error "disk on fire") with
  | Io _ -> ()
  | e -> Alcotest.failf "Sys_error -> %s" (to_string e));
  (match of_exn (Linalg.Cholesky.Not_positive_definite 3) with
  | Numerical _ -> ()
  | e -> Alcotest.failf "NPD -> %s" (to_string e));
  (match of_exn Exit with
  | Internal _ -> ()
  | e -> Alcotest.failf "unknown exn -> %s" (to_string e));
  (match guard (fun () -> 41 + 1) with
  | Ok 42 -> ()
  | _ -> Alcotest.fail "guard must pass values through");
  (match guard (fun () -> failwith "nope") with
  | Error (Invalid_input _) -> ()
  | _ -> Alcotest.fail "guard must classify Failure");
  check_bool "to_string prefixes the category" true
    (to_string (Numerical "x") = "numerical: x")

let suite =
  ( "robust",
    [
      case "injection off: run_robust == run bitwise" test_no_faults_matches_run;
      case "injection: pool parity at 1/2/4 domains"
        test_robust_run_pool_parity;
      case "retry recovers transients; abandonment recorded"
        test_retry_recovers_transients;
      case "fault accounting is self-consistent"
        test_fault_accounting_consistent;
      case "fault plan validation" test_fault_plan_validation;
      case "screen: non-finite rows dropped" test_screen_drops_non_finite;
      case "screen: MAD outlier dropped with its z-score"
        test_screen_drops_outlier;
      case "screen: zero-spread guard" test_screen_zero_spread_guard;
      case "screen: validation" test_screen_validation;
      case "refit: clean columns stay Direct" test_refit_direct_on_clean_cols;
      case "refit: duplicate columns ride the ladder"
        test_refit_ladder_on_duplicate_cols;
      case "omp: on_singular Stop vs Fallback"
        test_omp_on_singular_stop_vs_fallback;
      case "lars: on_singular bans the dependent column"
        test_lars_on_singular_bans_column;
      case "checkpoint: string and file round-trip"
        test_checkpoint_string_roundtrip;
      case "omp: killed-then-resumed fit is bitwise identical"
        test_omp_resume_bitwise;
      case "star: killed-then-resumed fit is bitwise identical"
        test_star_resume_bitwise;
      case "resume: checkpoint validation" test_resume_validation;
      case "omp/star: terminal checkpoint always emitted"
        test_terminal_checkpoint_emitted;
      case "lars: banned column takes a zero-length step"
        test_lars_ban_zero_step_regression;
      case "lars: checkpoint record round-trips"
        test_lars_checkpoint_roundtrip;
      case "cv: fold checkpoint record round-trips"
        test_cv_checkpoint_roundtrip;
      case "lars: killed-then-resumed path and fit are bitwise identical"
        test_lars_resume_bitwise;
      case "lars: ban event replays bitwise" test_lars_resume_with_ban_event;
      case "lars: resume validation" test_lars_resume_validation;
      case "lars: empty path is annotated" test_lars_fit_empty_path_note;
      case "screen: all-non-finite dataset is a typed error"
        test_screen_all_non_finite_error;
      case "cv: killed-then-resumed sweep is bitwise identical"
        test_cv_fold_checkpoint_resume;
      case "model notes round-trip through serialization"
        test_model_notes_roundtrip;
      case "pipeline: config validation" test_pipeline_config_validation;
      case "pipeline: end-to-end fit under 10% faults"
        test_pipeline_end_to_end_with_faults;
      case "pipeline: min_samples shortfall is a Simulation error"
        test_pipeline_min_samples_failure;
      case "errors: classification and guard" test_error_classification;
    ] )
