(* Column-sharded sweep engine.

   Contracts under test:
   - Shard.ranges is a contiguous, non-empty, covering partition, with
     the shard count clamped to the column count.
   - the left-biased tree-reduce argmax merge equals the sequential
     strict-[>] scan for adversarial tied inputs at 1/2/4/7 shards
     (property test).
   - Shard_sweep.raw_norms gathers bitwise Provider.column_norms.
   - LAR/LASSO/OMP/STAR sharded paths (Domains mode) are bitwise equal
     to shards:1 — dense and streamed providers, exact and incremental
     sweeps, several shard counts, including paths with lasso drops and
     banned (duplicate) columns.
   - Procs mode (re-exec'd worker processes) is bitwise equal too.
   - a worker SIGKILLed mid-fit (RSM_SHARD_FAULT) is respawned, replays
     the command log, and the fit output stays bitwise identical.
   - a checkpointed sharded run resumes bitwise equal to the
     uninterrupted run. *)
open Test_util
module P = Polybasis.Design.Provider
module SS = Rsm.Shard_sweep
module Shard = Parallel.Shard

let shard_counts = [ 1; 2; 3; 5 ]

let model_bits (m : Rsm.Model.t) =
  (m.Rsm.Model.support, Array.copy m.Rsm.Model.coeffs)

let lars_bits (steps : Rsm.Lars.step array) =
  Array.map
    (fun (s : Rsm.Lars.step) ->
      (s.Rsm.Lars.added, s.dropped, s.max_corr, model_bits s.model))
    steps

let omp_bits (steps : Rsm.Omp.step array) =
  Array.map
    (fun (s : Rsm.Omp.step) ->
      (s.Rsm.Omp.index, s.correlation, s.residual_norm, model_bits s.model))
    steps

let star_bits (steps : Rsm.Star.step array) =
  Array.map
    (fun (s : Rsm.Star.step) ->
      (s.Rsm.Star.index, s.coefficient, s.residual_norm, model_bits s.model))
    steps

(* --- partition ----------------------------------------------------- *)

let test_ranges_partition () =
  List.iter
    (fun (n, shards) ->
      let rs = Shard.ranges ~n ~shards in
      check_bool "at least one shard" true (Array.length rs >= 1);
      check_bool "clamped to n" true (Array.length rs <= max n 1 && Array.length rs <= shards);
      let expected_lo = ref 0 in
      Array.iter
        (fun (r : Shard.range) ->
          check_int "contiguous" !expected_lo r.Shard.lo;
          check_bool "non-empty" true (r.hi > r.lo || n = 0);
          expected_lo := r.hi)
        rs;
      check_int "covers [0, n)" n !expected_lo)
    [ (10, 1); (10, 3); (10, 10); (10, 17); (1, 4); (97, 8); (64, 64) ]

let test_ranges_rejects () =
  check_raises_invalid "shards < 1" (fun () -> Shard.ranges ~n:5 ~shards:0);
  check_raises_invalid "negative n" (fun () -> Shard.ranges ~n:(-1) ~shards:2)

(* --- argmax merge (adversarial ties) ------------------------------- *)

let seq_argmax vals =
  let best = ref (-1) and best_abs = ref 0. in
  Array.iteri
    (fun j v ->
      let a = Float.abs v in
      if a > !best_abs then begin
        best := j;
        best_abs := a
      end)
    vals;
  (!best, !best_abs)

let sharded_argmax ~shards vals =
  let n = Array.length vals in
  let rs = Shard.ranges ~n ~shards in
  Shard.merge_argmax
    (Array.map
       (fun (r : Shard.range) ->
         let best = ref (-1) and best_abs = ref 0. in
         for j = r.Shard.lo to r.hi - 1 do
           let a = Float.abs vals.(j) in
           if a > !best_abs then begin
             best := j;
             best_abs := a
           end
         done;
         (!best, !best_abs))
       rs)

let test_argmax_merge_ties =
  (* Values drawn from a tiny set force massive |value| ties — the
     adversarial case for the lowest-index rule. *)
  qtest ~count:500 "tree-merged argmax == sequential scan under ties"
    QCheck.(
      array_of_size Gen.(1 -- 40) (map (fun i -> float_of_int (i - 2)) (int_range 0 4)))
    (fun vals ->
      let reference = seq_argmax vals in
      List.for_all
        (fun shards -> sharded_argmax ~shards vals = reference)
        [ 1; 2; 4; 7 ])

let test_tree_reduce_rejects_empty () =
  check_raises_invalid "empty tree_reduce" (fun () ->
      Shard.tree_reduce ( + ) [||])

(* --- fixtures ------------------------------------------------------ *)

let random_setting seed =
  let rng = Randkit.Prng.create seed in
  let dim = 3 + Randkit.Prng.int rng 2 in
  let basis = Polybasis.Basis.quadratic dim in
  let k = 20 + Randkit.Prng.int rng 12 in
  let pts = Array.init k (fun _ -> Randkit.Gaussian.vector rng dim) in
  let g =
    Parallel.Pool.with_pool ~domains:1 (fun pool ->
        Polybasis.Design.matrix_rows ~pool basis pts)
  in
  (rng, basis, pts, g)

let sparse_response rng src =
  let k = P.rows src and m = P.cols src in
  let p = 2 + Randkit.Prng.int rng 3 in
  let support = Randkit.Sampling.subsample rng (Array.init m Fun.id) p in
  let f = Array.init k (fun _ -> 0.05 *. Randkit.Gaussian.sample rng) in
  Array.iter
    (fun j ->
      let col = P.column src j in
      for i = 0 to k - 1 do
        f.(i) <- f.(i) +. col.(i)
      done)
    support;
  f

let sweeps = [ Rsm.Corr_sweep.Exact; Rsm.Corr_sweep.incremental ~refresh:3 () ]

let sweep_tag = function
  | Rsm.Corr_sweep.Exact -> "exact"
  | Rsm.Corr_sweep.Incremental _ -> "incremental"

(* --- raw norms ----------------------------------------------------- *)

let test_raw_norms_bitwise () =
  let _, basis, pts, g = random_setting 11 in
  List.iter
    (fun src ->
      let reference = P.column_norms src in
      List.iter
        (fun shards ->
          let e =
            SS.create ~mode:SS.Domains ~shards ~sweep:Rsm.Corr_sweep.Exact src
              ~r0:(Array.make (P.rows src) 0.)
          in
          check_bool
            (Printf.sprintf "raw norms, %d shards" shards)
            true
            (SS.raw_norms e = reference))
        [ 2; 3; 7 ])
    [ P.dense g; P.streamed basis pts ]

(* --- solver parity, Domains mode ----------------------------------- *)

let lars_steps ?(mode = Rsm.Lars.Lar) ?shards ?shard_mode ~sweep src f =
  Rsm.Lars.path_p ~mode ~on_singular:`Fallback ~sweep ?shards ?shard_mode src
    f ~max_steps:12

let test_lars_sharded_bitwise () =
  List.iter
    (fun seed ->
      let rng, basis, pts, g = random_setting seed in
      let f = sparse_response rng (P.dense g) in
      List.iter
        (fun (tag, src) ->
          List.iter
            (fun sweep ->
              List.iter
                (fun mode ->
                  let reference =
                    lars_bits (lars_steps ~mode ~sweep src f)
                  in
                  List.iter
                    (fun shards ->
                      let sharded =
                        lars_bits (lars_steps ~mode ~sweep ~shards src f)
                      in
                      check_bool
                        (Printf.sprintf
                           "lars %s %s seed=%d shards=%d bitwise"
                           tag (sweep_tag sweep) seed shards)
                        true
                        (sharded = reference))
                    shard_counts)
                [ Rsm.Lars.Lar; Rsm.Lars.Lasso ])
            sweeps)
        [ ("dense", P.dense g); ("streamed", P.streamed basis pts) ])
    [ 3; 4 ]

(* Duplicated columns make entering candidates linearly dependent, so
   the `Fallback ban path runs under sharding too. *)
let test_lars_sharded_bans_bitwise () =
  let rng, _, _, g = random_setting 7 in
  let k = Linalg.Mat.rows g in
  let m = Linalg.Mat.cols g in
  let g2 = Linalg.Mat.create k (m + 2) in
  for i = 0 to k - 1 do
    for j = 0 to m - 1 do
      Linalg.Mat.set g2 i j (Linalg.Mat.get g i j)
    done;
    (* duplicates of two early columns *)
    Linalg.Mat.set g2 i m (Linalg.Mat.get g i 1);
    Linalg.Mat.set g2 i (m + 1) (Linalg.Mat.get g i 2)
  done;
  let src = P.dense g2 in
  let f = sparse_response rng src in
  List.iter
    (fun sweep ->
      let reference = lars_bits (lars_steps ~sweep src f) in
      List.iter
        (fun shards ->
          check_bool
            (Printf.sprintf "lars bans %s shards=%d" (sweep_tag sweep) shards)
            true
            (lars_bits (lars_steps ~sweep ~shards src f) = reference))
        shard_counts)
    sweeps

let test_omp_star_sharded_bitwise () =
  let rng, basis, pts, g = random_setting 5 in
  let f = sparse_response rng (P.dense g) in
  List.iter
    (fun (tag, src) ->
      List.iter
        (fun sweep ->
          let omp_ref =
            omp_bits (Rsm.Omp.path_p ~sweep src f ~max_lambda:6)
          in
          let star_ref =
            star_bits (Rsm.Star.path_p ~sweep src f ~max_lambda:6)
          in
          List.iter
            (fun shards ->
              check_bool
                (Printf.sprintf "omp %s %s shards=%d" tag (sweep_tag sweep)
                   shards)
                true
                (omp_bits (Rsm.Omp.path_p ~sweep ~shards src f ~max_lambda:6)
                = omp_ref);
              check_bool
                (Printf.sprintf "star %s %s shards=%d" tag (sweep_tag sweep)
                   shards)
                true
                (star_bits (Rsm.Star.path_p ~sweep ~shards src f ~max_lambda:6)
                = star_ref))
            shard_counts)
        sweeps)
    [ ("dense", P.dense g); ("streamed", P.streamed basis pts) ]

(* --- Procs mode ---------------------------------------------------- *)

let test_lars_process_shards_bitwise () =
  let rng, basis, pts, g = random_setting 9 in
  let f = sparse_response rng (P.dense g) in
  List.iter
    (fun (tag, src) ->
      List.iter
        (fun sweep ->
          let reference = lars_bits (lars_steps ~sweep src f) in
          let recovered = ref 0 in
          let sharded =
            lars_bits
              (Rsm.Lars.path_p ~on_singular:`Fallback ~sweep ~shards:3
                 ~shard_mode:SS.Procs ~recovered src f ~max_steps:12)
          in
          check_bool
            (Printf.sprintf "lars procs %s %s bitwise" tag (sweep_tag sweep))
            true (sharded = reference);
          check_int
            (Printf.sprintf "no recoveries %s %s" tag (sweep_tag sweep))
            0 !recovered)
        sweeps)
    [ ("dense", P.dense g); ("streamed", P.streamed basis pts) ]

let test_omp_process_shards_bitwise () =
  let rng, basis, pts, _ = random_setting 13 in
  let src = P.streamed basis pts in
  let f = sparse_response rng src in
  let reference = omp_bits (Rsm.Omp.path_p src f ~max_lambda:5) in
  let sharded =
    omp_bits
      (Rsm.Omp.path_p ~shards:2 ~shard_mode:SS.Procs src f ~max_lambda:5)
  in
  check_bool "omp procs bitwise" true (sharded = reference)

(* A worker killed mid-fit must be respawned, replay the log, and leave
   the output bitwise unchanged. RSM_SHARD_FAULT makes shard 1 SIGKILL
   itself on its 2nd selection query; the parent strips the variable on
   respawn so the replacement survives. *)
let test_process_shard_kill_recovery () =
  let rng, basis, pts, _ = random_setting 17 in
  let src = P.streamed basis pts in
  let f = sparse_response rng src in
  List.iter
    (fun sweep ->
      let reference = lars_bits (lars_steps ~sweep src f) in
      Unix.putenv "RSM_SHARD_FAULT" "1:2";
      let recovered = ref 0 in
      let killed =
        Fun.protect
          ~finally:(fun () -> Unix.putenv "RSM_SHARD_FAULT" "")
          (fun () ->
            lars_bits
              (Rsm.Lars.path_p ~on_singular:`Fallback ~sweep ~shards:3
                 ~shard_mode:SS.Procs ~recovered src f ~max_steps:12))
      in
      check_bool
        (Printf.sprintf "killed-shard run bitwise (%s)" (sweep_tag sweep))
        true (killed = reference);
      check_bool
        (Printf.sprintf "recovery happened (%s)" (sweep_tag sweep))
        true (!recovered >= 1))
    sweeps

(* --- checkpoint/resume under sharding ------------------------------ *)

let test_lars_sharded_resume_bitwise () =
  let rng, basis, pts, _ = random_setting 21 in
  let src = P.streamed basis pts in
  let f = sparse_response rng src in
  let sweep = Rsm.Corr_sweep.incremental ~refresh:2 () in
  let reference =
    lars_bits
      (Rsm.Lars.path_p ~on_singular:`Fallback ~sweep ~shards:3 src f
         ~max_steps:10)
  in
  (* Capture a mid-path checkpoint from the sharded run... *)
  let saved = ref None in
  ignore
    (Rsm.Lars.path_p ~on_singular:`Fallback ~sweep ~shards:3
       ~checkpoint_every:2
       ~on_checkpoint:(fun ck -> if !saved = None then saved := Some ck)
       src f ~max_steps:10);
  let ck = Option.get !saved in
  (* ...and resume it sharded: replay + live continuation must equal the
     uninterrupted walk bitwise, except the documented max_corr
     diagnostic on replayed steps (exact replay dots vs the live run's
     delta-maintained vector), which we exclude by comparing models. *)
  let resumed =
    Rsm.Lars.path_p ~on_singular:`Fallback ~sweep ~shards:3 ~resume:ck src f
      ~max_steps:10
  in
  let strip bits =
    Array.map (fun (a, d, _, mb) -> (a, d, mb)) bits
  in
  check_bool "sharded resume bitwise (modulo replayed max_corr)" true
    (strip (lars_bits resumed) = strip reference)

let suite =
  ( "shard",
    [
      case "ranges is a covering partition" test_ranges_partition;
      case "ranges validates arguments" test_ranges_rejects;
      test_argmax_merge_ties;
      case "tree_reduce rejects empty input" test_tree_reduce_rejects_empty;
      case "raw_norms gathers bitwise column_norms" test_raw_norms_bitwise;
      slow_case "LAR/LASSO sharded == unsharded (bitwise)"
        test_lars_sharded_bitwise;
      case "LAR sharded ban path bitwise" test_lars_sharded_bans_bitwise;
      slow_case "OMP/STAR sharded == unsharded (bitwise)"
        test_omp_star_sharded_bitwise;
      slow_case "LAR process shards bitwise" test_lars_process_shards_bitwise;
      case "OMP process shards bitwise" test_omp_process_shards_bitwise;
      slow_case "killed process shard recovers bitwise"
        test_process_shard_kill_recovery;
      case "sharded checkpoint resume bitwise" test_lars_sharded_resume_bitwise;
    ] )
