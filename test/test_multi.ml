(* Multi-output fused fitting.

   Contracts under test:
   - run_robust_multi shares one point set and one fault history across
     outputs, and each output's dataset is bitwise equal to the
     per-output run_robust with a copy of the same generator (finite
     evaluators); a single-simulator multi run equals run_robust
     exactly, report included.
   - Crossval.run_fold_curves_multi equals the per-output fold loop and
     validates its inputs.
   - the fused multi-output grid (omp/star/lars_multi_p) is bitwise
     equal to R independent single-output selections, dense and
     streamed, at 1/2/4 domains, for every path solver — including the
     Lars.Engine walk against Lars.path_p.
   - Solver.fit_multi_p's fused and per-output drivers agree bitwise,
     and both agree with R independent fit_cv_p calls.
   - the Multi checkpoint manifest + per-output Cv fold files resume
     bitwise after deleting arbitrary cells, resume across drivers
     (fused grid <-> per-output), and reject mismatched shapes.
   - resolve_fused_multi: explicit fused + shards raises Conflict;
     Pipeline.config rejects the same combination as Error (Config _);
     Pipeline.fit_multi rejects adaptive retry as Error (Config _).
   - Pipeline.fit_multi shares rows across outputs and its two drivers
     produce bitwise-identical models. *)
open Test_util
module P = Polybasis.Design.Provider
module Sim = Circuit.Simulator

let pool_counts = [ 1; 2; 4 ]

let all_equal msg = function
  | [] | [ _ ] -> ()
  | ref :: rest ->
      List.iteri
        (fun i x ->
          check_bool
            (Printf.sprintf "%s: domains=%d equals domains=1" msg
               (List.nth pool_counts (i + 1)))
            true (x = ref))
        rest

let model_bits (m : Rsm.Model.t) =
  (m.Rsm.Model.support, Array.copy m.Rsm.Model.coeffs)

let random_setting seed =
  let rng = Randkit.Prng.create seed in
  let dim = 3 + Randkit.Prng.int rng 3 in
  let basis = Polybasis.Basis.quadratic dim in
  let k = 18 + Randkit.Prng.int rng 16 in
  let pts = Array.init k (fun _ -> Randkit.Gaussian.vector rng dim) in
  let g =
    Parallel.Pool.with_pool ~domains:1 (fun pool ->
        Polybasis.Design.matrix_rows ~pool basis pts)
  in
  (rng, basis, pts, g)

let sparse_response rng src =
  let k = P.rows src and m = P.cols src in
  let p = 2 + Randkit.Prng.int rng 3 in
  let support = Randkit.Sampling.subsample rng (Array.init m Fun.id) p in
  let f = Array.init k (fun _ -> 0.05 *. Randkit.Gaussian.sample rng) in
  Array.iter
    (fun j ->
      let col = P.column src j in
      for i = 0 to k - 1 do
        f.(i) <- f.(i) +. col.(i)
      done)
    support;
  f

(* --- run_robust_multi ---------------------------------------------- *)

let sims3 =
  [|
    Sim.make ~name:"a" ~dim:3 ~seconds_per_sample:1. (fun p ->
        p.(0) +. (2. *. p.(1)));
    Sim.make ~name:"b" ~dim:3 ~seconds_per_sample:2. (fun p ->
        p.(2) -. (p.(0) *. p.(1)));
    Sim.make ~name:"c" ~dim:3 ~seconds_per_sample:0.5 (fun p ->
        (3. *. p.(2)) +. (p.(1) *. p.(1)));
  |]

let faulty =
  Sim.fault_plan ~rate:0.3
    ~burst:(Sim.burst_model ~entry:0.05 ~len:4. ()) ()

let report_sans_extra (r : Sim.run_report) =
  { r with Sim.accounted_extra_seconds = 0. }

let test_run_robust_multi_parity () =
  let retry = Sim.retry_policy ~max_attempts:2 () in
  let g = Randkit.Prng.create 42 in
  let ds, rep =
    Sim.run_robust_multi ~faults:faulty ~retry sims3 (Randkit.Prng.copy g)
      ~k:60
  in
  check_bool "points physically shared" true
    (ds.(0).Sim.points == ds.(1).Sim.points
    && ds.(1).Sim.points == ds.(2).Sim.points);
  Array.iteri
    (fun r sim ->
      let d, rep1 =
        Sim.run_robust ~faults:faulty ~retry sim (Randkit.Prng.copy g) ~k:60
      in
      check_bool
        (Printf.sprintf "output %d values bitwise equal per-output run" r)
        true
        (ds.(r).Sim.values = d.Sim.values);
      check_bool
        (Printf.sprintf "output %d points equal per-output run" r)
        true
        (ds.(r).Sim.points = d.Sim.points);
      (* The report matches the per-output account except for the
         accounted retry cost, which in the multi run charges the
         summed per-sample cost of all simulators. *)
      check_bool
        (Printf.sprintf "output %d report equal modulo extra seconds" r)
        true
        (report_sans_extra rep = report_sans_extra rep1))
    sims3;
  (* A single-simulator multi run is run_robust exactly, report and
     all. *)
  let ds1, rep_a =
    Sim.run_robust_multi ~faults:faulty ~retry
      [| sims3.(0) |]
      (Randkit.Prng.copy g) ~k:60
  in
  let d1, rep_b =
    Sim.run_robust ~faults:faulty ~retry sims3.(0) (Randkit.Prng.copy g) ~k:60
  in
  check_bool "single-output multi == run_robust (dataset)" true
    (ds1.(0) = d1);
  check_bool "single-output multi == run_robust (report)" true (rep_a = rep_b);
  ignore rep

let test_run_robust_multi_pool_invariant () =
  let retry = Sim.retry_policy ~max_attempts:3 () in
  let seq =
    Sim.run_robust_multi ~faults:faulty ~retry sims3
      (Randkit.Prng.create 7) ~k:50
  in
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let par =
        Sim.run_robust_multi ~pool ~faults:faulty ~retry sims3
          (Randkit.Prng.create 7) ~k:50
      in
      check_bool "datasets pool-invariant" true (fst seq = fst par);
      check_bool "report pool-invariant" true (snd seq = snd par))

let test_run_robust_multi_validation () =
  check_raises_invalid "empty sims" (fun () ->
      Sim.run_robust_multi [||] (Randkit.Prng.create 1) ~k:5);
  check_raises_invalid "k = 0" (fun () ->
      Sim.run_robust_multi sims3 (Randkit.Prng.create 1) ~k:0);
  let odd = Sim.make ~name:"odd" ~dim:2 ~seconds_per_sample:1. (fun _ -> 0.) in
  check_raises_invalid "dimension mismatch" (fun () ->
      Sim.run_robust_multi [| sims3.(0); odd |] (Randkit.Prng.create 1) ~k:5)

(* --- Crossval.run_fold_curves_multi -------------------------------- *)

let test_fold_curves_multi () =
  let rng = Randkit.Prng.create 5 in
  let plan = Stat.Crossval.make_plan rng ~n:20 ~folds:4 in
  let curve_of r q ~train ~held_out =
    [|
      float_of_int ((10 * r) + q + Array.length train);
      float_of_int (Array.length held_out);
    |]
  in
  let reference =
    Array.init 3 (fun r ->
        Stat.Crossval.run_fold_curves plan ~fit_curve:(curve_of r))
  in
  let multi =
    Stat.Crossval.run_fold_curves_multi ~outputs:3 plan
      ~fit_curves:(fun pending ->
        Array.map
          (fun (r, q, train, held_out) -> curve_of r q ~train ~held_out)
          pending)
  in
  check_bool "multi fold curves equal the per-output loop" true
    (multi = reference);
  check_raises_invalid "outputs must be positive" (fun () ->
      Stat.Crossval.run_fold_curves_multi ~outputs:0 plan
        ~fit_curves:(fun _ -> [||]))

(* --- fused multi-output selection vs independent fits --------------- *)

let result_bits (r : Rsm.Select.result) =
  (r.Rsm.Select.lambda, Array.copy r.Rsm.Select.curve,
   model_bits r.Rsm.Select.model)

let prop_fused_multi_bitwise solver seed =
  let rng, basis, pts, g = random_setting seed in
  let src_s = P.streamed basis pts in
  let src_d = P.dense g in
  let outputs = 1 + Randkit.Prng.int rng 3 in
  let fs = Array.init outputs (fun _ -> sparse_response rng src_d) in
  let fused_multi pool src =
    let r0 = Randkit.Prng.create (seed + 11) in
    match solver with
    | `Omp -> Rsm.Select.omp_multi_p ~pool r0 ~max_lambda:5 src fs
    | `Star -> Rsm.Select.star_multi_p ~pool r0 ~max_lambda:5 src fs
    | `Lar ->
        Rsm.Select.lars_multi_p ~pool ~mode:Rsm.Lars.Lar r0 ~max_lambda:5 src
          fs
    | `Lasso ->
        Rsm.Select.lars_multi_p ~pool ~mode:Rsm.Lars.Lasso r0 ~max_lambda:5
          src fs
  in
  let single pool src f =
    (* An independent single-output selection from the same generator
       state, on the fold-at-a-time driver (fused:false), so the grid
       is checked against the plain path_p walks. *)
    let r0 = Randkit.Prng.create (seed + 11) in
    match solver with
    | `Omp -> Rsm.Select.omp_p ~pool ~fused:false r0 ~max_lambda:5 src f
    | `Star -> Rsm.Select.star_p ~pool ~fused:false r0 ~max_lambda:5 src f
    | `Lar ->
        Rsm.Select.lars_p ~pool ~mode:Rsm.Lars.Lar ~fused:false r0
          ~max_lambda:5 src f
    | `Lasso ->
        Rsm.Select.lars_p ~pool ~mode:Rsm.Lars.Lasso ~fused:false r0
          ~max_lambda:5 src f
  in
  List.iter
    (fun src ->
      let name = if P.is_streamed src then "streamed" else "dense" in
      let results =
        List.map
          (fun d ->
            Parallel.Pool.with_pool ~domains:d (fun pool ->
                let grid = Array.map result_bits (fused_multi pool src) in
                let indep =
                  Array.map (fun f -> result_bits (single pool src f)) fs
                in
                check_bool
                  (Printf.sprintf
                     "%s fused grid == independent fits (%d outputs)" name
                     outputs)
                  true (grid = indep);
                grid))
          pool_counts
      in
      all_equal (Printf.sprintf "%s fused grid across domains" name) results)
    [ src_d; src_s ];
  true

let test_solver_fit_multi_parity () =
  let rng, basis, pts, g = random_setting 3 in
  let src_s = P.streamed basis pts in
  let src_d = P.dense g in
  let fs = Array.init 3 (fun _ -> sparse_response rng src_d) in
  List.iter
    (fun src ->
      let name = if P.is_streamed src then "streamed" else "dense" in
      List.iter
        (fun meth ->
          let fit fused_outputs =
            Array.map model_bits
              (Rsm.Solver.fit_multi_p ~max_lambda:5 ~fused_outputs
                 (Randkit.Prng.create 99) src fs meth)
          in
          let fused = fit true and per = fit false in
          let singles =
            Array.map
              (fun f ->
                model_bits
                  (Rsm.Solver.fit_cv_p ~max_lambda:5
                     (Randkit.Prng.create 99) src f meth))
              fs
          in
          let mname = Rsm.Solver.name meth in
          check_bool
            (Printf.sprintf "%s %s fused == per-output" name mname)
            true (fused = per);
          check_bool
            (Printf.sprintf "%s %s per-output == independent fit_cv_p" name
               mname)
            true (per = singles))
        [ Rsm.Solver.Lar; Rsm.Solver.Lasso; Rsm.Solver.Omp; Rsm.Solver.Star ])
    [ src_d; src_s ];
  (* A non-path method has no fused grid; fit_multi_p still fits every
     output, identically to independent calls. *)
  let stomp =
    Array.map model_bits
      (Rsm.Solver.fit_multi_p ~max_lambda:5 (Randkit.Prng.create 99) src_d fs
         Rsm.Solver.Stomp)
  in
  let stomp_singles =
    Array.map
      (fun f ->
        model_bits
          (Rsm.Solver.fit_cv_p ~max_lambda:5 (Randkit.Prng.create 99) src_d f
             Rsm.Solver.Stomp))
      fs
  in
  check_bool "StOMP multi == independent fits" true (stomp = stomp_singles)

let test_fit_multi_validation () =
  let _, basis, pts, _ = random_setting 4 in
  let src = P.streamed basis pts in
  check_raises_invalid "empty outputs" (fun () ->
      Rsm.Solver.fit_multi_p (Randkit.Prng.create 1) src [||] Rsm.Solver.Omp);
  let fs = Array.init 2 (fun _ -> Array.make (P.rows src) 1.) in
  check_raises_invalid "notes count mismatch" (fun () ->
      Rsm.Solver.fit_multi_p ~notes:[| [||] |] (Randkit.Prng.create 1) src fs
        Rsm.Solver.Omp)

(* --- multi checkpoint: delete cells, resume, cross-driver ----------- *)

let with_ckpt_base name f =
  let base =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rsm_test_%s_%d" name (Unix.getpid ()))
  in
  let cleanup () =
    let dir = Filename.dirname base and leaf = Filename.basename base in
    Array.iter
      (fun entry ->
        if String.length entry >= String.length leaf
           && String.sub entry 0 (String.length leaf) = leaf
        then try Sys.remove (Filename.concat dir entry) with Sys_error _ -> ())
      (Sys.readdir dir)
  in
  Fun.protect ~finally:cleanup (fun () -> f base)

let test_multi_checkpoint_resume () =
  with_ckpt_base "multi_ckpt" (fun base ->
      let rng, _, _, g = random_setting 8 in
      let src = P.dense g in
      let fs = Array.init 3 (fun _ -> sparse_response rng src) in
      let run ?checkpoint ?resume () =
        Array.map result_bits
          (Rsm.Select.lars_multi_p ?checkpoint ?resume
             (Randkit.Prng.create 21) ~max_lambda:5 src fs)
      in
      let reference = run () in
      let first = run ~checkpoint:base () in
      check_bool "checkpointed run equals plain run" true (reference = first);
      check_bool "manifest written" true
        (Sys.file_exists (Rsm.Serialize.Checkpoint.Multi.manifest_file base));
      (* Kill a few grid cells — one whole output and one stray fold —
         and resume: only those refit, result bitwise unchanged. *)
      let out_base r = Rsm.Serialize.Checkpoint.Multi.output_base base r in
      for q = 0 to 3 do
        Sys.remove (Rsm.Serialize.Checkpoint.Cv.fold_file (out_base 1) q)
      done;
      Sys.remove (Rsm.Serialize.Checkpoint.Cv.fold_file (out_base 2) 0);
      let resumed = run ~checkpoint:base ~resume:true () in
      check_bool "resume after deleted cells is bitwise equal" true
        (reference = resumed);
      (* Cross-driver resume: the per-output driver reads the same
         per-output fold files the fused grid wrote. *)
      Sys.remove (Rsm.Serialize.Checkpoint.Cv.fold_file (out_base 0) 2);
      let per_output =
        Array.map model_bits
          (Rsm.Solver.fit_multi_p ~max_lambda:5 ~fused_outputs:false
             ~cv_checkpoint:base ~cv_resume:true (Randkit.Prng.create 21) src
             fs Rsm.Solver.Lar)
      in
      let ref_models = Array.map (fun (_, _, m) -> m) reference in
      check_bool "per-output resume from fused checkpoints is bitwise equal"
        true
        (per_output = ref_models);
      (* A manifest that disagrees with the grid shape is rejected. *)
      check_raises_invalid "mismatched max_lambda rejected" (fun () ->
          Rsm.Select.lars_multi_p ~checkpoint:base ~resume:true
            (Randkit.Prng.create 21) ~max_lambda:6 src fs))

(* --- driver resolution and config conflicts ------------------------- *)

let test_resolve_fused_multi () =
  let resolve = Rsm.Select.resolve_fused_multi in
  check_bool "auto: exact unsharded is fused" true
    (resolve ~sweep:None ~fused:None ~shards:None);
  check_bool "auto: dense default fused too" true
    (resolve ~sweep:(Some Rsm.Corr_sweep.Exact) ~fused:None ~shards:(Some 1));
  check_bool "auto: sharded forces per-output" false
    (resolve ~sweep:None ~fused:None ~shards:(Some 2));
  check_bool "auto: incremental sweep forces per-output" false
    (resolve
       ~sweep:(Some (Rsm.Corr_sweep.incremental ()))
       ~fused:None ~shards:None);
  check_bool "explicit off" false
    (resolve ~sweep:None ~fused:(Some false) ~shards:None);
  check_bool "explicit on, legal" true
    (resolve ~sweep:None ~fused:(Some true) ~shards:(Some 1));
  match resolve ~sweep:None ~fused:(Some true) ~shards:(Some 2) with
  | _ -> Alcotest.fail "explicit fused + shards should raise Conflict"
  | exception Rsm.Select.Conflict _ -> ()

let test_config_conflicts () =
  (match Robust.Pipeline.config ~fused_outputs:true ~shards:2 () with
  | Error (Robust.Error.Config _) -> ()
  | Ok _ -> Alcotest.fail "fused_outputs + shards accepted"
  | Error e ->
      Alcotest.failf "wrong error category: %s" (Robust.Error.to_string e));
  match Robust.Pipeline.config ~fused_outputs:true ~shards:1 () with
  | Ok cfg ->
      check_bool "legal fused_outputs kept" true
        (cfg.Robust.Pipeline.fused_outputs = Some true)
  | Error e -> Alcotest.failf "legal config rejected: %s" (Robust.Error.to_string e)

(* --- Pipeline.fit_multi --------------------------------------------- *)

let opamp_setting () =
  let amp = Circuit.Opamp.build ~n_parasitics:10 () in
  let sims =
    Array.of_list
      (List.map (fun m -> Circuit.Opamp.simulator amp m)
         Circuit.Opamp.all_metrics)
  in
  let basis = Polybasis.Basis.constant_linear (Circuit.Opamp.dim amp) in
  (sims, basis)

let test_pipeline_fit_multi () =
  let sims, basis = opamp_setting () in
  let cfg fused_outputs =
    match
      Robust.Pipeline.config ~method_:Rsm.Solver.Lar ~samples:60 ~max_lambda:6
        ~faults:(Sim.fault_plan ~rate:0.1 ())
        ~min_samples:20 ~quorum:0.5 ~fused_outputs ()
    with
    | Ok cfg -> cfg
    | Error e -> Alcotest.failf "config: %s" (Robust.Error.to_string e)
  in
  let fit fused_outputs =
    match
      Robust.Pipeline.fit_multi (cfg fused_outputs) sims basis
        (Randkit.Prng.create 12)
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "fit_multi: %s" (Robust.Error.to_string e)
  in
  let a = fit true and b = fit false in
  check_int "one model per metric" (Array.length sims)
    (Array.length a.Robust.Pipeline.models);
  check_bool "rows shared across outputs" true
    (Array.for_all
       (fun d ->
         d.Sim.points == a.Robust.Pipeline.datasets.(0).Sim.points)
       a.Robust.Pipeline.datasets);
  check_bool "fused and per-output pipelines agree bitwise" true
    (Array.map model_bits a.Robust.Pipeline.models
    = Array.map model_bits b.Robust.Pipeline.models);
  check_bool "per-output screen reports present" true
    (Array.for_all Option.is_some a.Robust.Pipeline.screen_reports);
  let summary =
    Robust.Pipeline.multi_outcome_summary
      ~names:
        (Array.of_list
           (List.map Circuit.Opamp.metric_name Circuit.Opamp.all_metrics))
      a
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "summary mentions every metric" true
    (List.for_all
       (fun m -> contains summary (Circuit.Opamp.metric_name m))
       Circuit.Opamp.all_metrics)

let test_pipeline_fit_multi_rejects_adaptive () =
  let sims, basis = opamp_setting () in
  let cfg =
    match
      Robust.Pipeline.config ~samples:40 ~min_samples:10 ~quorum:0.5
        ~adaptive:(Robust.Retry.policy ~breaker_threshold:3 ())
        ()
    with
    | Ok cfg -> cfg
    | Error e -> Alcotest.failf "config: %s" (Robust.Error.to_string e)
  in
  match Robust.Pipeline.fit_multi cfg sims basis (Randkit.Prng.create 1) with
  | Error (Robust.Error.Config _) -> ()
  | Ok _ -> Alcotest.fail "adaptive multi fit accepted"
  | Error e ->
      Alcotest.failf "wrong error category: %s" (Robust.Error.to_string e)

let seed_gen = QCheck.Gen.(map (fun n -> n + 1) (int_bound 5000))
let seed_arb = QCheck.make ~print:string_of_int seed_gen

let suite =
  ( "multi",
    [
      case "run_robust_multi: per-output bitwise parity"
        test_run_robust_multi_parity;
      case "run_robust_multi: pool-invariant"
        test_run_robust_multi_pool_invariant;
      case "run_robust_multi: validation" test_run_robust_multi_validation;
      case "crossval: multi fold curves" test_fold_curves_multi;
      qtest ~count:5 "OMP fused grid == independent fits" seed_arb
        (prop_fused_multi_bitwise `Omp);
      qtest ~count:5 "STAR fused grid == independent fits" seed_arb
        (prop_fused_multi_bitwise `Star);
      qtest ~count:5 "LAR fused grid == independent fits" seed_arb
        (prop_fused_multi_bitwise `Lar);
      qtest ~count:5 "LASSO fused grid == independent fits" seed_arb
        (prop_fused_multi_bitwise `Lasso);
      case "solver: fit_multi_p fused == per-output == fit_cv_p"
        test_solver_fit_multi_parity;
      case "solver: fit_multi_p validation" test_fit_multi_validation;
      case "checkpoint: delete cells, resume, cross-driver"
        test_multi_checkpoint_resume;
      case "resolve_fused_multi: auto and conflicts" test_resolve_fused_multi;
      case "pipeline config: fused_outputs conflicts" test_config_conflicts;
      case "pipeline: fit_multi shares rows, drivers agree"
        test_pipeline_fit_multi;
      case "pipeline: fit_multi rejects adaptive retry"
        test_pipeline_fit_multi_rejects_adaptive;
    ] )
