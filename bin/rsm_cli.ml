(* Command-line front-end for the performance-modeling library.

   rsm info                          list workloads and their dimensions
   rsm mc     --circuit ... ...      Monte-Carlo performance statistics
   rsm model  --circuit ... ...      fit a sparse model and report accuracy *)

open Cmdliner

(* Process-sharded sweeps (--shard-mode process) re-exec this binary as
   shard workers; the hook must run before cmdliner parses anything. *)
let () = Rsm.Shard_sweep.worker_entry_if_requested ()

type workload = {
  name : string;
  dim : int;
  sim : Circuit.Simulator.t;
  nominal : float;
  unit_ : string;
}

let opamp_metric_of_string s =
  List.find_opt
    (fun m -> Circuit.Opamp.metric_name m = String.lowercase_ascii s)
    Circuit.Opamp.all_metrics

let make_workload ~circuit ~metric ~cells ~parasitics =
  match String.lowercase_ascii circuit with
  | "opamp" -> (
      let amp = Circuit.Opamp.build ~n_parasitics:parasitics () in
      match opamp_metric_of_string metric with
      | None ->
          Error
            (Printf.sprintf
               "unknown opamp metric %S (expected gain | bandwidth | power | \
                offset)"
               metric)
      | Some m ->
          Ok
            {
              name = Printf.sprintf "opamp/%s" (Circuit.Opamp.metric_name m);
              dim = Circuit.Opamp.dim amp;
              sim = Circuit.Opamp.simulator amp m;
              nominal = Circuit.Opamp.nominal amp m;
              unit_ = Circuit.Opamp.metric_unit m;
            })
  | "sram" ->
      let sram = Circuit.Sram.build ~cells () in
      Ok
        {
          name = "sram/read_delay";
          dim = Circuit.Sram.dim sram;
          sim = Circuit.Sram.simulator sram;
          nominal = Circuit.Sram.nominal_delay_ps sram;
          unit_ = "ps";
        }
  | other -> Error (Printf.sprintf "unknown circuit %S (expected opamp | sram)" other)

(* Shared options. *)
let circuit =
  Arg.(value & opt string "opamp" & info [ "circuit" ] ~docv:"NAME"
         ~doc:"Workload circuit: opamp or sram.")

let metric =
  Arg.(value & opt string "offset" & info [ "metric" ] ~docv:"METRIC"
         ~doc:"OpAmp metric: gain, bandwidth, power or offset.")

let cells =
  Arg.(value & opt int 120 & info [ "cells" ] ~docv:"N"
         ~doc:"SRAM array size in cells (1180 = the paper's 21310 factors).")

let parasitics =
  Arg.(value & opt int 550 & info [ "parasitics" ] ~docv:"N"
         ~doc:"OpAmp layout-parasitic count (550 = the paper's 630 factors).")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let positive_int =
  let parse s =
    match Cmdliner.Arg.conv_parser Cmdliner.Arg.int s with
    | Ok n when n >= 1 -> Ok n
    | Ok n -> Error (`Msg (Printf.sprintf "%d is not a positive integer" n))
    | Error _ as e -> e
  in
  Cmdliner.Arg.conv (parse, Cmdliner.Arg.conv_printer Cmdliner.Arg.int)

let domains =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domains for the parallel fitting engine (design matrix, \
           correlation sweeps, CV folds, Monte-Carlo batches). Defaults to \
           $(b,RSM_NUM_DOMAINS) or the machine's recommended domain count. \
           Results are bitwise independent of this setting for a fixed seed.")

(* Apply --domains before any kernel touches the shared default pool. *)
let use_domains n =
  Option.iter Parallel.Pool.set_default_domains n;
  Parallel.Pool.default ()

let engine =
  Arg.(
    value
    & vflag `Auto
        [
          ( `Streamed,
            info [ "matrix-free" ]
              ~doc:
                "Stream design-matrix columns on demand from cached Hermite \
                 tables instead of materializing the K×M matrix. Bitwise \
                 identical results; peak memory independent of M." );
          ( `Dense,
            info [ "dense" ]
              ~doc:
                "Materialize the full design matrix (fastest when it fits in \
                 memory)." );
        ])

(* Auto: go matrix-free when the dense K×M matrix would exceed ~1 GiB. *)
let dense_bytes_budget = 1 lsl 30

let choose_streamed engine ~k ~m =
  match engine with
  | `Streamed -> true
  | `Dense -> false
  | `Auto -> 8 * k * m > dense_bytes_budget

let provider_of ?pool engine basis pts =
  let k = Array.length pts and m = Polybasis.Basis.size basis in
  if choose_streamed engine ~k ~m then
    Polybasis.Design.Provider.streamed basis pts
  else
    Polybasis.Design.Provider.dense
      (Polybasis.Design.matrix_rows ?pool basis pts)

let engine_name src =
  if Polybasis.Design.Provider.is_streamed src then "matrix-free" else "dense"

let samples =
  Arg.(value & opt int 1000 & info [ "samples" ] ~docv:"K"
         ~doc:"Monte-Carlo / training sample count.")

let err_exit msg =
  prerr_endline ("rsm: " ^ msg);
  exit 2

(* Up-front numeric validation: one friendly line and exit 2, never an
   exception out of the middle of a run. *)
let check_at_least name floor v =
  if v < floor then
    err_exit (Printf.sprintf "--%s must be at least %d (got %d)" name floor v)

let check_unit_interval name v =
  if not (Float.is_finite v) || v < 0. || v >= 1. then
    err_exit (Printf.sprintf "--%s must lie in [0, 1) (got %g)" name v)

let check_sizes ~cells ~parasitics =
  check_at_least "cells" 1 cells;
  check_at_least "parasitics" 0 parasitics

(* --- info --- *)

let info_cmd =
  let run () =
    let amp = Circuit.Opamp.build () in
    Printf.printf "opamp   : %d factors; metrics: gain bandwidth power offset\n"
      (Circuit.Opamp.dim amp);
    let sram = Circuit.Sram.build ~cells:120 () in
    let paper = Circuit.Sram.build () in
    Printf.printf
      "sram    : %d factors at 120 cells (default); %d at %d cells (paper)\n"
      (Circuit.Sram.dim sram) (Circuit.Sram.dim paper) Circuit.Sram.paper_cells;
    Printf.printf "methods : %s (plus lasso, ridge as extensions)\n"
      (String.concat " " (List.map Rsm.Solver.name Rsm.Solver.all))
  in
  Cmd.v (Cmd.info "info" ~doc:"List workloads, dimensions and methods.")
    Term.(const run $ const ())

(* --- mc --- *)

let mc_cmd =
  let run circuit metric cells parasitics seed samples domains =
    check_at_least "samples" 1 samples;
    check_sizes ~cells ~parasitics;
    match make_workload ~circuit ~metric ~cells ~parasitics with
    | Error e -> err_exit e
    | Ok w ->
        let pool = use_domains domains in
        let rng = Randkit.Prng.create seed in
        let d = Circuit.Simulator.run ~pool w.sim rng ~k:samples in
        let v = d.Circuit.Simulator.values in
        Printf.printf "%s: %d Monte-Carlo samples over %d factors\n" w.name
          samples w.dim;
        Printf.printf "  nominal %12.4f %s\n" w.nominal w.unit_;
        Printf.printf "  mean    %12.4f %s\n" (Stat.Descriptive.mean v) w.unit_;
        Printf.printf "  std     %12.4f %s\n" (Stat.Descriptive.std v) w.unit_;
        List.iter
          (fun p ->
            Printf.printf "  p%02.0f     %12.4f %s\n" (100. *. p)
              (Stat.Descriptive.quantile v p) w.unit_)
          [ 0.01; 0.5; 0.99 ];
        Printf.printf "  accounted simulation cost: %.0f s\n"
          (Circuit.Simulator.simulated_cost w.sim ~k:samples)
  in
  Cmd.v
    (Cmd.info "mc" ~doc:"Monte-Carlo performance statistics of a workload.")
    Term.(
      const run $ circuit $ metric $ cells $ parasitics $ seed $ samples
      $ domains)

(* --- model --- *)

let method_arg =
  Arg.(value & opt string "omp" & info [ "method" ] ~docv:"METHOD"
         ~doc:"Fitting method: ls, star, lar, lasso or omp.")

let test_arg =
  Arg.(value & opt int 2000 & info [ "test" ] ~docv:"K"
         ~doc:"Testing sample count.")

let max_lambda_arg =
  Arg.(value & opt int 100 & info [ "max-lambda" ] ~docv:"L"
         ~doc:"Upper bound for the cross-validated sparsity level.")

let save_model_arg =
  Arg.(value & opt (some string) None
       & info [ "save-model" ] ~docv:"FILE"
           ~doc:"Write the fitted model to FILE (rsm-model text format).")

let folds_arg =
  Arg.(value & opt (some int) None & info [ "folds" ] ~docv:"Q"
         ~doc:"Cross-validation folds for the sparsity selection (default 4). \
               Combined with --checkpoint, an explicit --folds selects \
               per-fold CV checkpointing: every finished fold writes \
               FILE.fold<q> and a killed sweep resumes at the first \
               unfinished fold.")

let fault_rate_arg =
  Arg.(value & opt float 0. & info [ "fault-rate" ] ~docv:"R"
         ~doc:"Injected simulator fault probability per attempt, in [0, 1). \
               Faults mix NaN returns, finite outliers and transient \
               crashes; retries and screening must absorb them.")

let retries_arg =
  Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N"
         ~doc:"Total attempts per sample (1 = no retry).")

let no_screen_arg =
  Arg.(value & flag & info [ "no-screen" ]
         ~doc:"Disable the MAD outlier screen on the training responses.")

let screen_threshold_arg =
  Arg.(value & opt float 6.0 & info [ "screen-threshold" ] ~docv:"Z"
         ~doc:"Robust z-score beyond which a training response is dropped.")

let checkpoint_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Checkpoint the solver state to FILE while fitting (omp, \
                 star, lar and lasso). Without --folds this is a \
                 fixed-sparsity fit at --max-lambda with periodic state \
                 saves; with an explicit --folds the cross-validated sweep \
                 itself is checkpointed per fold (FILE.fold<q>).")

let resume_arg =
  Arg.(value & flag & info [ "resume" ]
         ~doc:"Resume the fit from the --checkpoint file instead of starting \
               over. The finished model is bitwise identical to an \
               uninterrupted run with the same seed.")

let checkpoint_every_arg =
  Arg.(value & opt int 10 & info [ "checkpoint-every" ] ~docv:"N"
         ~doc:"Iterations between checkpoint writes.")

let sweep_arg =
  Arg.(
    value
    & opt (enum [ ("exact", `Exact); ("incremental", `Incremental) ]) `Exact
    & info [ "sweep" ] ~docv:"MODE"
        ~doc:
          "Correlation engine for the path solvers: $(b,exact) recomputes \
           the full G^T.r sweep every step (bitwise-reference mode); \
           $(b,incremental) delta-updates the correlations from cached Gram \
           columns, turning the per-step sweep from O(K.M) into O(p.M) — \
           validated against exact to 1e-10 relative, not bitwise.")

let sweep_refresh_arg =
  Arg.(value & opt int Rsm.Corr_sweep.default_refresh
       & info [ "sweep-refresh" ] ~docv:"N"
           ~doc:"Exact-refresh cadence of the incremental sweep: every N \
                 movement steps the correlations are recomputed from scratch \
                 to wash out drift (0 = never).")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition the dictionary into N contiguous column shards, each \
           sweeping its own column slice with its own Gram-cache slab. \
           Selections, coefficients and the chosen model are bitwise \
           identical to the unsharded sweep at every shard count.")

let shard_mode_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("domain", Rsm.Shard_sweep.Domains);
             ("process", Rsm.Shard_sweep.Procs);
           ])
        Rsm.Shard_sweep.Domains
    & info [ "shard-mode" ] ~docv:"MODE"
        ~doc:
          "$(b,domain) keeps the shard slabs in-image; $(b,process) re-execs \
           one worker process per shard, so peak per-process memory is \
           bounded by the shard slice and a crashed worker is respawned and \
           replayed from the command log with bitwise-unchanged results.")

let fused_cv_arg =
  Arg.(
    value
    & vflag None
        [
          ( Some true,
            info [ "fused-cv" ]
              ~doc:
                "Advance all CV fold solvers in lockstep, sharing each \
                 step's design-column generation across folds (one fused \
                 multi-residual sweep per step). Bitwise identical model; \
                 pays streamed column generation once per step instead of \
                 once per fold. Default: on for the matrix-free engine with \
                 the exact sweep." );
          ( Some false,
            info [ "per-fold-cv" ]
              ~doc:"Fit each CV fold independently (the classic driver)." );
        ])

let outputs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "outputs" ] ~docv:"METRICS"
        ~doc:
          "Comma-separated opamp metrics to fit together (e.g. \
           $(b,gain,bandwidth,power,offset)). The metrics share one \
           Monte-Carlo batch (every sample evaluated once per metric), one \
           hygiene verdict and one design matrix; the fused driver selects \
           every metric's sparsity from a single column-generation pass per \
           greedy step. Writes one model per metric \
           (--save-model FILE.$(i,metric)). Opamp only; overrides --metric.")

let fused_outputs_arg =
  Arg.(
    value
    & vflag None
        [
          ( Some true,
            info [ "fused-outputs" ]
              ~doc:
                "Advance all outputs' CV fold solvers in one lockstep grid, \
                 sharing each greedy step's design-column generation across \
                 every output and fold. Bitwise identical models to \
                 per-output fitting. Default: on whenever the exact sweep \
                 runs unsharded. Conflicts with --shards > 1." );
          ( Some false,
            info [ "per-output" ]
              ~doc:"Fit each output independently (R single-output fits)." );
        ])

let rescreen_arg =
  Arg.(value & flag & info [ "rescreen" ]
         ~doc:"After the fit, rescreen the training rows on the model's \
               residuals (robust MAD scale, --screen-threshold) and repair \
               the coefficients by down-dating the active-set Gram factor \
               for the dropped rows instead of refitting from scratch.")

let burst_rate_arg =
  Arg.(value & opt float 0. & info [ "burst-rate" ] ~docv:"P"
         ~doc:"Per-sample probability of entering a correlated outage burst \
               (two-state Markov chain over the sample axis), in [0, 1). \
               0 (default) disables the burst model; inside a burst every \
               attempt fails with a transient-heavy mix until the window \
               ends.")

let burst_len_arg =
  Arg.(value & opt float 20. & info [ "burst-len" ] ~docv:"L"
         ~doc:"Expected burst length in samples (geometric), at least 1.")

let quorum_arg =
  Arg.(value & opt float Robust.Pipeline.default_quorum
       & info [ "quorum" ] ~docv:"Q"
           ~doc:"Fraction of the requested samples that must survive delivery \
                 and screening, in (0, 1]. A shortfall above the quorum \
                 proceeds as a degraded fit (noted on the model); below it \
                 the run fails with a one-line diagnostic.")

let screen_space_arg =
  Arg.(value & opt string "response" & info [ "screen-space" ] ~docv:"SPACE"
         ~doc:"Which hygiene screens run: $(b,response) (MAD z-score on \
               simulated values), $(b,factor) (robust Mahalanobis distance \
               on sample points), or $(b,both).")

let breaker_threshold_arg =
  Arg.(value & opt int 0 & info [ "breaker-threshold" ] ~docv:"N"
         ~doc:"Enable the adaptive retry driver (exponential backoff with \
               deterministic jitter and a circuit breaker): the breaker \
               trips after N consecutive failed samples, fails fast through \
               the estimated burst, then probes half-open. 0 (default) \
               keeps the fixed retry policy.")

let print_run_reports ?adaptive ?point run_report screen_report =
  Printf.printf "  hygiene       : %s\n"
    (Circuit.Simulator.report_summary run_report);
  (match adaptive with
  | Some r ->
      Printf.printf
        "  hygiene       : adaptive retry: %d event(s), %d granted, %d \
         denied\n"
        (Array.length r.Robust.Retry.events)
        r.Robust.Retry.retries_granted r.Robust.Retry.retries_denied
  | None -> ());
  (match (screen_report, (point : Robust.Screen.point_report option)) with
  | None, None -> Printf.printf "  hygiene       : screen: off\n"
  | sr, pt ->
      (match sr with
      | Some r ->
          Printf.printf "  hygiene       : %s\n"
            (Robust.Screen.report_summary r)
      | None -> ());
      (match pt with
      | Some r ->
          Printf.printf "  hygiene       : %s\n"
            (Robust.Screen.point_report_summary r)
      | None -> ()))

let print_model_notes model =
  Array.iter
    (fun note -> Printf.printf "  note          : %s\n" note)
    (Rsm.Model.notes model)

let save_model_maybe save_model model =
  match save_model with
  | None -> ()
  | Some path ->
      Rsm.Serialize.save path model;
      Printf.printf "  model saved   : %s\n" path

(* Multi-output fit: R opamp metrics over one simulation batch, one
   hygiene verdict, one design matrix and (by default) one fused
   selection grid. Always the cross-validated pipeline — the fixed-λ
   checkpoint path is single-output only. *)
let run_model_multi ~circuit ~parasitics ~seed ~samples ~test ~meth
    ~max_lambda ~save_model ~domains ~engine ~folds_n ~no_screen
    ~screen_threshold ~screen_space ~faults ~retry ~adaptive ~quorum
    ~checkpoint ~resume ~sweep ~shards ~shard_mode ~fused_cv ~fused_outputs
    ~rescreen ~outputs_spec =
  if String.lowercase_ascii circuit <> "opamp" then
    err_exit
      (Printf.sprintf
         "--outputs is an opamp feature (circuit %S has a single metric)"
         circuit);
  let metrics =
    String.split_on_char ',' outputs_spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match opamp_metric_of_string s with
           | Some m -> m
           | None ->
               err_exit
                 (Printf.sprintf
                    "unknown opamp metric %S in --outputs (expected gain | \
                     bandwidth | power | offset)"
                    s))
  in
  if metrics = [] then err_exit "--outputs needs at least one metric";
  let amp = Circuit.Opamp.build ~n_parasitics:parasitics () in
  let dim = Circuit.Opamp.dim amp in
  let sims =
    Array.of_list (List.map (fun m -> Circuit.Opamp.simulator amp m) metrics)
  in
  let names =
    Array.of_list (List.map Circuit.Opamp.metric_name metrics)
  in
  let units = Array.of_list (List.map Circuit.Opamp.metric_unit metrics) in
  let outputs = Array.length sims in
  let pool = use_domains domains in
  let rng = Randkit.Prng.create seed in
  let basis = Polybasis.Basis.constant_linear dim in
  let m_cols = Polybasis.Basis.size basis in
  if Rsm.Solver.needs_overdetermined meth && samples < m_cols then
    err_exit
      (Printf.sprintf
         "LS needs at least %d samples for %d coefficients; got %d (use \
          omp/lar/star, the point of the paper)"
         m_cols m_cols samples);
  let cfg =
    match
      Robust.Pipeline.config ~method_:meth ~folds:folds_n ~max_lambda ~samples
        ~screen:(not no_screen) ~screen_threshold ~screen_space ~faults ~retry
        ?adaptive ~quorum
        ~min_samples:(min samples (max 8 (samples / 2)))
        ~streamed:(choose_streamed engine ~k:samples ~m:m_cols)
        ?checkpoint ~resume ~sweep ~shards ~shard_mode ?fused_cv ?fused_outputs
        ~rescreen ()
    with
    | Ok cfg -> cfg
    | Error e -> err_exit (Robust.Error.to_string e)
  in
  let recovered = ref 0 in
  match
    Circuit.Testbench.timed (fun () ->
        Robust.Pipeline.fit_multi ~pool ~recovered cfg sims basis rng)
  with
  | Error e, _ -> err_exit (Robust.Error.to_string e)
  | Ok o, fit_s ->
      Printf.printf
        "opamp/%s | %s | K = %d training samples, M = %d bases | %d outputs\n"
        (String.concat "," (Array.to_list names))
        (Rsm.Solver.name meth)
        (Circuit.Simulator.dataset_size o.Robust.Pipeline.datasets.(0))
        m_cols outputs;
      Printf.printf "  design engine : %s\n"
        (if cfg.Robust.Pipeline.streamed then "matrix-free" else "dense");
      Printf.printf "  sweep engine  : %s%s\n"
        (Rsm.Corr_sweep.sweep_to_string sweep)
        (match fused_outputs with
        | Some true -> ", fused outputs"
        | Some false -> ", per-output"
        | None -> ", auto output driver");
      if shards > 1 then
        Printf.printf "  shard engine  : %d shards (%s mode)\n" shards
          (Rsm.Shard_sweep.mode_to_string shard_mode);
      if !recovered > 0 then
        Printf.printf
          "  shard recovery: %d worker respawn(s), log replayed, results \
           bitwise unchanged\n"
          !recovered;
      (match checkpoint with
      | Some base ->
          Printf.printf "  checkpoint    : %s.out<r>.fold<q> (per-fold CV%s)\n"
            base
            (if resume then ", resumed" else "")
      | None -> ());
      Printf.printf "  hygiene       : %s\n"
        (Circuit.Simulator.report_summary o.Robust.Pipeline.m_run_report);
      let any_screen =
        Array.exists Option.is_some o.Robust.Pipeline.screen_reports
        || o.Robust.Pipeline.m_point_report <> None
      in
      if not any_screen then Printf.printf "  hygiene       : screen: off\n"
      else begin
        Array.iteri
          (fun r rep ->
            match rep with
            | Some rep ->
                Printf.printf "  hygiene       : %s %s\n" names.(r)
                  (Robust.Screen.report_summary rep)
            | None -> ())
          o.Robust.Pipeline.screen_reports;
        match o.Robust.Pipeline.m_point_report with
        | Some rep ->
            Printf.printf "  hygiene       : %s\n"
              (Robust.Screen.point_report_summary rep)
        | None -> ()
      end;
      (* One fresh point set tests every metric — the same sharing the
         training batch used. *)
      let test_pts =
        Array.init test (fun _ -> Randkit.Gaussian.vector rng dim)
      in
      let src_te = provider_of ~pool engine basis test_pts in
      Array.iteri
        (fun r model ->
          let truth = Array.map sims.(r).Circuit.Simulator.eval test_pts in
          Printf.printf
            "  %-9s     : testing error %.2f%% (%s), %d bases selected\n"
            names.(r)
            (100. *. Rsm.Model.error_on_p model src_te truth)
            units.(r) (Rsm.Model.nnz model);
          Array.iter
            (fun note -> Printf.printf "  note          : %s: %s\n" names.(r) note)
            (Rsm.Model.notes model))
        o.Robust.Pipeline.models;
      Printf.printf "  fitting cost  : %.2f s (measured, all %d outputs)\n"
        fit_s outputs;
      Printf.printf
        "  sim cost      : %.0f s (accounted, +%.0f s retry overhead)\n"
        (Array.fold_left
           (fun acc sim -> acc +. Circuit.Simulator.simulated_cost sim ~k:samples)
           0. sims)
        o.Robust.Pipeline.m_run_report.Circuit.Simulator.accounted_extra_seconds;
      match save_model with
      | None -> ()
      | Some path ->
          Array.iteri
            (fun r model ->
              let p = path ^ "." ^ names.(r) in
              Rsm.Serialize.save p model;
              Printf.printf "  model saved   : %s\n" p)
            o.Robust.Pipeline.models

let model_cmd =
  let run circuit metric cells parasitics seed samples test method_name
      max_lambda save_model domains engine folds fault_rate retries no_screen
      screen_threshold checkpoint resume checkpoint_every sweep_mode
      sweep_refresh fused_cv rescreen shards shard_mode burst_rate burst_len
      quorum screen_space_s breaker_threshold outputs fused_outputs =
    check_at_least "samples" 1 samples;
    check_at_least "test" 1 test;
    check_at_least "max-lambda" 1 max_lambda;
    let folds_n = Option.value folds ~default:4 in
    check_at_least "folds" 2 folds_n;
    check_at_least "retries" 1 retries;
    check_at_least "checkpoint-every" 1 checkpoint_every;
    check_at_least "shards" 1 shards;
    check_at_least "sweep-refresh" 0 sweep_refresh;
    check_at_least "breaker-threshold" 0 breaker_threshold;
    let sweep =
      match sweep_mode with
      | `Exact -> Rsm.Corr_sweep.Exact
      | `Incremental -> Rsm.Corr_sweep.incremental ~refresh:sweep_refresh ()
    in
    check_unit_interval "fault-rate" fault_rate;
    check_unit_interval "burst-rate" burst_rate;
    if not (Float.is_finite burst_len) || burst_len < 1. then
      err_exit
        (Printf.sprintf "--burst-len must be at least 1 (got %g)" burst_len);
    if not (Float.is_finite quorum) || quorum <= 0. || quorum > 1. then
      err_exit (Printf.sprintf "--quorum must lie in (0, 1] (got %g)" quorum);
    let screen_space =
      match Robust.Pipeline.screen_space_of_string screen_space_s with
      | Some s -> s
      | None ->
          err_exit
            (Printf.sprintf
               "--screen-space must be response, factor or both (got %S)"
               screen_space_s)
    in
    if screen_threshold <= 0. || not (Float.is_finite screen_threshold) then
      err_exit
        (Printf.sprintf "--screen-threshold must be positive (got %g)"
           screen_threshold);
    if resume && checkpoint = None then
      err_exit "--resume needs --checkpoint FILE to resume from";
    check_sizes ~cells ~parasitics;
    let burst =
      if burst_rate > 0. then
        Some (Circuit.Simulator.burst_model ~entry:burst_rate ~len:burst_len ())
      else None
    in
    let faults =
      if fault_rate > 0. || burst <> None then
        Circuit.Simulator.fault_plan ~rate:fault_rate ?burst ()
      else Circuit.Simulator.no_faults
    in
    let retry = Circuit.Simulator.retry_policy ~max_attempts:retries () in
    let adaptive =
      if breaker_threshold > 0 then
        Some (Robust.Retry.policy ~max_attempts:retries ~breaker_threshold ())
      else None
    in
    match outputs with
    | Some outputs_spec -> (
        match Rsm.Solver.of_name method_name with
        | None -> err_exit (Printf.sprintf "unknown method %S" method_name)
        | Some meth ->
            run_model_multi ~circuit ~parasitics ~seed ~samples ~test ~meth
              ~max_lambda ~save_model ~domains ~engine ~folds_n ~no_screen
              ~screen_threshold ~screen_space ~faults ~retry ~adaptive ~quorum
              ~checkpoint ~resume ~sweep ~shards ~shard_mode ~fused_cv
              ~fused_outputs ~rescreen ~outputs_spec)
    | None -> (
    match make_workload ~circuit ~metric ~cells ~parasitics with
    | Error e -> err_exit e
    | Ok w -> (
        match Rsm.Solver.of_name method_name with
        | None -> err_exit (Printf.sprintf "unknown method %S" method_name)
        | Some meth ->
            let pool = use_domains domains in
            let rng = Randkit.Prng.create seed in
            let basis = Polybasis.Basis.constant_linear w.dim in
            let m_cols = Polybasis.Basis.size basis in
            if
              Rsm.Solver.needs_overdetermined meth && samples < m_cols
            then
              err_exit
                (Printf.sprintf
                   "LS needs at least %d samples for %d coefficients; got %d \
                    (use omp/lar/star, the point of the paper)"
                   m_cols m_cols samples);
            match checkpoint with
            | Some ckpt_file when folds = None -> (
                (* Fixed-λ checkpointed fit: simulate robustly, screen,
                   then run the solver with periodic state saves. (An
                   explicit --folds routes a checkpointed run through
                   the per-fold CV branch below instead.) *)
                (match meth with
                | Rsm.Solver.Omp | Rsm.Solver.Star | Rsm.Solver.Lar
                | Rsm.Solver.Lasso ->
                    ()
                | _ ->
                    err_exit
                      "--checkpoint supports the omp, star, lar and lasso \
                       methods only");
                let data, run_report, adaptive_report =
                  match adaptive with
                  | None ->
                      let d, r =
                        Circuit.Simulator.run_robust ~pool ~faults ~retry
                          w.sim rng ~k:samples
                      in
                      (d, r, None)
                  | Some policy ->
                      let d, r =
                        Robust.Retry.run ~pool ~faults policy w.sim rng
                          ~k:samples
                      in
                      (d, r.Robust.Retry.run, Some r)
                in
                let data, screen_report =
                  if no_screen || screen_space = Robust.Pipeline.Factor then
                    (data, None)
                  else
                    match
                      Robust.Screen.screen ~threshold:screen_threshold data
                    with
                    | Ok (d, r) -> (d, Some r)
                    | Error e -> err_exit (Robust.Error.to_string e)
                in
                let data, point_report =
                  if no_screen || screen_space = Robust.Pipeline.Response then
                    (data, None)
                  else
                    match Robust.Screen.mahalanobis data with
                    | Ok (d, r) -> (d, Some r)
                    | Error e -> err_exit (Robust.Error.to_string e)
                in
                let survived = Circuit.Simulator.dataset_size data in
                let quorum_floor =
                  int_of_float (Float.ceil (quorum *. float_of_int samples))
                in
                if survived < quorum_floor then
                  err_exit
                    (Printf.sprintf
                       "quorum lost: only %d of %d requested samples survived \
                        delivery and screening, below the %g%% quorum (%d); \
                        raise --samples or --retries, or lower --quorum"
                       survived samples (100. *. quorum) quorum_floor);
                let src =
                  provider_of ~pool engine basis data.Circuit.Simulator.points
                in
                let f_tr = data.Circuit.Simulator.values in
                let lambda =
                  min max_lambda
                    (min (Polybasis.Design.Provider.rows src) m_cols)
                in
                let recovered = ref 0 in
                let model, fit_s =
                  Circuit.Testbench.timed (fun () ->
                      match meth with
                      | Rsm.Solver.Omp | Rsm.Solver.Star -> (
                          let resume_state =
                            if not resume then None
                            else
                              match Rsm.Serialize.Checkpoint.load ckpt_file with
                              | Ok c -> Some c
                              | Error e ->
                                  err_exit
                                    (Printf.sprintf
                                       "cannot load checkpoint %s: %s"
                                       ckpt_file e)
                          in
                          let on_checkpoint c =
                            Rsm.Serialize.Checkpoint.save ckpt_file c
                          in
                          match meth with
                          | Rsm.Solver.Omp ->
                              Rsm.Omp.fit_p ~pool ~on_singular:`Fallback
                                ~checkpoint_every ~on_checkpoint
                                ?resume:resume_state ~sweep ~shards
                                ~shard_mode ~recovered src f_tr ~lambda
                          | _ ->
                              Rsm.Star.fit_p ~pool ~checkpoint_every
                                ~on_checkpoint ?resume:resume_state ~sweep
                                ~shards ~shard_mode ~recovered src f_tr
                                ~lambda)
                      | _ ->
                          (* lar / lasso: the event-log LARS checkpoint. *)
                          let resume_state =
                            if not resume then None
                            else
                              match
                                Rsm.Serialize.Checkpoint.Lars.load ckpt_file
                              with
                              | Ok c -> Some c
                              | Error e ->
                                  err_exit
                                    (Printf.sprintf
                                       "cannot load checkpoint %s: %s"
                                       ckpt_file e)
                          in
                          let mode =
                            if meth = Rsm.Solver.Lasso then Rsm.Lars.Lasso
                            else Rsm.Lars.Lar
                          in
                          Rsm.Lars.fit_p ~mode ~pool ~on_singular:`Fallback
                            ~checkpoint_every
                            ~on_checkpoint:(fun c ->
                              Rsm.Serialize.Checkpoint.Lars.save ckpt_file c)
                            ?resume:resume_state ~sweep ~shards ~shard_mode
                            ~recovered src f_tr ~lambda)
                in
                let model =
                  if survived >= samples then model
                  else
                    Rsm.Model.add_note model
                      (Robust.Pipeline.degraded_note ~requested:samples
                         ~survived ~quorum run_report)
                in
                let test_data =
                  Circuit.Simulator.run ~pool w.sim rng ~k:test
                in
                let src_te =
                  provider_of ~pool engine basis
                    test_data.Circuit.Simulator.points
                in
                Printf.printf
                  "%s | %s | K = %d training samples, M = %d bases | fixed \
                   lambda = %d (checkpointed)\n"
                  w.name (Rsm.Solver.name meth) samples m_cols lambda;
                Printf.printf "  design engine : %s\n" (engine_name src);
                Printf.printf "  sweep engine  : %s\n"
                  (Rsm.Corr_sweep.sweep_to_string sweep);
                if shards > 1 then
                  Printf.printf "  shard engine  : %d shards (%s mode)\n"
                    shards
                    (Rsm.Shard_sweep.mode_to_string shard_mode);
                if !recovered > 0 then
                  Printf.printf
                    "  shard recovery: %d worker respawn(s), log replayed, \
                     results bitwise unchanged\n"
                    !recovered;
                print_run_reports ?adaptive:adaptive_report ?point:point_report
                  run_report screen_report;
                Printf.printf "  checkpoint    : %s (every %d iterations%s)\n"
                  ckpt_file checkpoint_every
                  (if resume then ", resumed" else "");
                Printf.printf "  testing error : %.2f%% (on %d fresh samples)\n"
                  (100.
                  *. Rsm.Model.error_on_p model src_te
                       test_data.Circuit.Simulator.values)
                  test;
                Printf.printf "  bases selected: %d\n" (Rsm.Model.nnz model);
                print_model_notes model;
                Printf.printf "  fitting cost  : %.2f s (measured)\n" fit_s;
                save_model_maybe save_model model)
            | _ -> (
                (* Cross-validated fit; with --checkpoint and an explicit
                   --folds the sweep writes per-fold checkpoint files. *)
                let cfg =
                  match
                    Robust.Pipeline.config ~method_:meth ~folds:folds_n
                      ~max_lambda ~samples ~screen:(not no_screen)
                      ~screen_threshold ~screen_space ~faults ~retry ?adaptive
                      ~quorum
                      ~min_samples:(min samples (max 8 (samples / 2)))
                      ~streamed:
                        (choose_streamed engine ~k:samples ~m:m_cols)
                      ?checkpoint ~resume ~sweep ~shards ~shard_mode ?fused_cv
                      ~rescreen ()
                  with
                  | Ok cfg -> cfg
                  | Error e -> err_exit (Robust.Error.to_string e)
                in
                let recovered = ref 0 in
                match
                  Circuit.Testbench.timed (fun () ->
                      Robust.Pipeline.fit ~pool ~recovered cfg w.sim basis rng)
                with
                | Error e, _ -> err_exit (Robust.Error.to_string e)
                | Ok o, fit_s ->
                    let model = o.Robust.Pipeline.model in
                    let test_data =
                      Circuit.Simulator.run ~pool w.sim rng ~k:test
                    in
                    let src_te =
                      provider_of ~pool engine basis
                        test_data.Circuit.Simulator.points
                    in
                    Printf.printf
                      "%s | %s | K = %d training samples, M = %d bases\n"
                      w.name (Rsm.Solver.name meth)
                      (Circuit.Simulator.dataset_size o.Robust.Pipeline.dataset)
                      m_cols;
                    Printf.printf "  design engine : %s\n"
                      (if cfg.Robust.Pipeline.streamed then "matrix-free"
                       else "dense");
                    Printf.printf "  sweep engine  : %s%s\n"
                      (Rsm.Corr_sweep.sweep_to_string sweep)
                      (match fused_cv with
                      | Some true -> ", fused CV"
                      | Some false -> ", per-fold CV"
                      | None -> ", auto CV driver");
                    if shards > 1 then
                      Printf.printf "  shard engine  : %d shards (%s mode)\n"
                        shards
                        (Rsm.Shard_sweep.mode_to_string shard_mode);
                    if !recovered > 0 then
                      Printf.printf
                        "  shard recovery: %d worker respawn(s), log \
                         replayed, results bitwise unchanged\n"
                        !recovered;
                    (match checkpoint with
                    | Some base ->
                        Printf.printf
                          "  checkpoint    : %s.fold<q> (per-fold CV%s)\n" base
                          (if resume then ", resumed" else "")
                    | None -> ());
                    print_run_reports
                      ?adaptive:o.Robust.Pipeline.adaptive_report
                      ?point:o.Robust.Pipeline.point_report
                      o.Robust.Pipeline.run_report
                      o.Robust.Pipeline.screen_report;
                    Printf.printf
                      "  testing error : %.2f%% (on %d fresh samples)\n"
                      (100.
                      *. Rsm.Model.error_on_p model src_te
                           test_data.Circuit.Simulator.values)
                      test;
                    Printf.printf "  bases selected: %d\n" (Rsm.Model.nnz model);
                    print_model_notes model;
                    Printf.printf "  fitting cost  : %.2f s (measured)\n" fit_s;
                    Printf.printf
                      "  sim cost      : %.0f s (accounted at %.2f s/sample, \
                       +%.0f s retry overhead)\n"
                      (Circuit.Simulator.simulated_cost w.sim ~k:samples)
                      w.sim.Circuit.Simulator.seconds_per_sample
                      o.Robust.Pipeline.run_report
                        .Circuit.Simulator.accounted_extra_seconds;
                    save_model_maybe save_model model)))
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:"Fit a sparse performance model and validate it on fresh samples.")
    Term.(
      const run $ circuit $ metric $ cells $ parasitics $ seed $ samples
      $ test_arg $ method_arg $ max_lambda_arg $ save_model_arg $ domains
      $ engine $ folds_arg $ fault_rate_arg $ retries_arg $ no_screen_arg
      $ screen_threshold_arg $ checkpoint_arg $ resume_arg
      $ checkpoint_every_arg $ sweep_arg $ sweep_refresh_arg $ fused_cv_arg
      $ rescreen_arg $ shards_arg $ shard_mode_arg $ burst_rate_arg
      $ burst_len_arg $ quorum_arg $ screen_space_arg $ breaker_threshold_arg
      $ outputs_arg $ fused_outputs_arg)

let predict_cmd =
  let model_file =
    Arg.(
      required
      & opt (some string) None
      & info [ "model" ] ~docv:"FILE" ~doc:"Model file written by --save-model.")
  in
  let run circuit metric cells parasitics seed samples model_file domains =
    let pool = use_domains domains in
    match make_workload ~circuit ~metric ~cells ~parasitics with
    | Error e -> err_exit e
    | Ok w -> (
        match Rsm.Serialize.load model_file with
        | Error e -> err_exit ("cannot load model: " ^ e)
        | Ok model ->
            let basis = Polybasis.Basis.constant_linear w.dim in
            if Rsm.Model.(model.basis_size) <> Polybasis.Basis.size basis then
              err_exit
                (Printf.sprintf
                   "model has %d bases but the workload dictionary has %d - \
                    wrong circuit or size options"
                   model.Rsm.Model.basis_size (Polybasis.Basis.size basis));
            let rng = Randkit.Prng.create seed in
            let data = Circuit.Simulator.run ~pool w.sim rng ~k:samples in
            let pred =
              Array.map
                (fun p -> Rsm.Model.predict_point model basis p)
                data.Circuit.Simulator.points
            in
            Printf.printf
              "%s | loaded %d-term model from %s; validated on %d fresh \
               simulations\n"
              w.name (Rsm.Model.nnz model) model_file samples;
            Printf.printf "  relative-RMS error: %.2f%%\n"
              (100.
              *. Stat.Metrics.relative_rms ~pred
                   ~truth:data.Circuit.Simulator.values);
            Printf.printf "  max abs error     : %.4f %s\n"
              (Stat.Metrics.max_abs_error ~pred
                 ~truth:data.Circuit.Simulator.values)
              w.unit_)
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Load a saved model and validate it against fresh simulations.")
    Term.(
      const run $ circuit $ metric $ cells $ parasitics $ seed $ samples
      $ model_file $ domains)

(* --- eval: serve a saved model through a compiled tape --- *)

let parse_digest s =
  let s = if String.length s > 2 && String.sub s 0 2 = "0x" then s else "0x" ^ s in
  match Int64.of_string s with
  | d -> d
  | exception _ ->
      err_exit (Printf.sprintf "--expect-digest %S is not a hex digest" s)

let load_served ?expect basis path =
  let registry = Serve.Registry.create ~capacity:4 basis in
  match Serve.Registry.load ?expect registry path with
  | Error e -> err_exit ("cannot serve model: " ^ e)
  | Ok entry -> entry

(* %.17g floats round-trip exactly; strings here are workload/unit
   names and user paths, escaped minimally. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
          Buffer.add_char b '\\';
          Buffer.add_char b c
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Spec bounds may be one-sided; JSON has no Infinity literal, so an
   open bound serializes as null. *)
let json_bound v =
  if v = Float.neg_infinity || v = Float.infinity then "null"
  else Printf.sprintf "%.17g" v

let json_notes model =
  String.concat ", "
    (Array.to_list
       (Array.map
          (fun n -> Printf.sprintf "\"%s\"" (json_escape n))
          (Rsm.Model.notes model)))

let eval_cmd =
  let model_file =
    Arg.(
      required
      & opt (some string) None
      & info [ "model" ] ~docv:"FILE" ~doc:"Model file written by --save-model.")
  in
  let expect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect-digest" ] ~docv:"HEX"
          ~doc:
            "Refuse to serve unless the model file's content digest (FNV-1a \
             64, as printed by this command) equals HEX - a swapped or \
             corrupted file is rejected instead of silently compiled.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one machine-readable JSON object on stdout instead of the \
             human report: workload, digest, tape statistics, parity verdict, \
             value statistics and throughput.")
  in
  let run circuit metric cells parasitics seed samples model_file expect domains
      json =
    check_at_least "samples" 1 samples;
    check_sizes ~cells ~parasitics;
    match make_workload ~circuit ~metric ~cells ~parasitics with
    | Error e -> err_exit e
    | Ok w ->
        let pool = use_domains domains in
        let basis = Polybasis.Basis.constant_linear w.dim in
        let expect = Option.map parse_digest expect in
        let entry = load_served ?expect basis model_file in
        let tape = entry.Serve.Registry.tape in
        let model = entry.Serve.Registry.model in
        let rng = Randkit.Prng.create seed in
        let points =
          Array.init samples (fun _ -> Randkit.Gaussian.vector rng w.dim)
        in
        let compiled, batch_s =
          Circuit.Testbench.timed (fun () ->
              Serve.Eval.eval_batch ~pool tape points)
        in
        let naive, naive_s =
          Circuit.Testbench.timed (fun () ->
              Array.map (Rsm.Model.predict_point model basis) points)
        in
        if compiled <> naive then err_exit "compiled/naive evaluation mismatch";
        let rate secs =
          if secs > 0. then float_of_int samples /. secs else Float.infinity
        in
        if json then
          let escape = json_escape in
          (* Provenance rides the model file: a quorum-degraded fit's
             "degraded: ..." note (and any fallback notes) surface here
             so a serving consumer can see how the artifact was built. *)
          let notes_json = json_notes model in
          Printf.printf
            {|{"workload": "%s", "model_file": "%s", "digest": "%016Lx", "tape": {"terms": %d, "instructions": %d, "vars_touched": %d, "dim": %d, "max_degree": %d}, "parity": "bitwise", "points": %d, "value_mean": %.17g, "value_std": %.17g, "unit": "%s", "throughput_compiled_per_s": %.6g, "throughput_naive_per_s": %.6g, "notes": [%s]}
|}
            (escape w.name) (escape model_file) entry.Serve.Registry.digest
            (Serve.Eval.nnz tape)
            (Serve.Eval.tape_length tape)
            (Serve.Eval.vars_touched tape)
            (Serve.Eval.dim tape) (Serve.Eval.max_degree tape) samples
            (Stat.Descriptive.mean compiled)
            (Stat.Descriptive.std compiled)
            (escape w.unit_) (rate batch_s) (rate naive_s) notes_json
        else begin
          Printf.printf "%s | serving %s\n" w.name model_file;
          Printf.printf "  content digest: %016Lx\n" entry.Serve.Registry.digest;
          Printf.printf
            "  tape          : %d terms, %d factor instructions, %d of %d \
             variables touched, max degree %d\n"
            (Serve.Eval.nnz tape)
            (Serve.Eval.tape_length tape)
            (Serve.Eval.vars_touched tape)
            (Serve.Eval.dim tape) (Serve.Eval.max_degree tape);
          Printf.printf
            "  parity        : compiled == naive (bitwise, %d points)\n"
            samples;
          Printf.printf "  value mean/std: %.6g / %.6g %s\n"
            (Stat.Descriptive.mean compiled)
            (Stat.Descriptive.std compiled)
            w.unit_;
          Printf.printf
            "  throughput    : %.3g evals/s compiled, %.3g evals/s naive\n"
            (rate batch_s) (rate naive_s);
          Array.iter
            (fun note -> Printf.printf "  note          : %s\n" note)
            (Rsm.Model.notes model)
        end
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:
         "Serve a saved model: compile it to an instruction tape, verify \
          bitwise parity with the reference evaluator, and report \
          throughput.")
    Term.(
      const run $ circuit $ metric $ cells $ parasitics $ seed $ samples
      $ model_file $ expect_arg $ domains $ json_arg)

(* --- yield / sensitivity: fit a model, then use it --- *)

let fit_for_use ~circuit ~metric ~cells ~parasitics ~seed ~samples ~max_lambda
    ~domains ~engine =
  match make_workload ~circuit ~metric ~cells ~parasitics with
  | Error e -> err_exit e
  | Ok w ->
      let pool = use_domains domains in
      let rng = Randkit.Prng.create seed in
      let basis = Polybasis.Basis.constant_linear w.dim in
      let data = Circuit.Simulator.run ~pool w.sim rng ~k:samples in
      let src = provider_of ~pool engine basis data.Circuit.Simulator.points in
      let r =
        Rsm.Select.omp_p ~pool rng ~max_lambda src data.Circuit.Simulator.values
      in
      (w, basis, r.Rsm.Select.model, rng)

let lower_arg =
  Arg.(value & opt float Float.neg_infinity
       & info [ "lower" ] ~docv:"X" ~doc:"Lower spec bound.")

let upper_arg =
  Arg.(value & opt float Float.infinity
       & info [ "upper" ] ~docv:"X" ~doc:"Upper spec bound.")

let yield_cmd =
  let served_model_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:
            "Serving mode: skip the fit and estimate yield from this saved \
             model, streaming --mc-samples draws through a compiled \
             instruction tape over the domain pool.")
  in
  let mc_samples_arg =
    Arg.(
      value
      & opt int 100_000
      & info [ "mc-samples" ] ~docv:"N"
          ~doc:"Model Monte-Carlo sample count for the yield estimate.")
  in
  let batch_arg =
    Arg.(
      value
      & opt int Serve.Stream.default_batch
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Streaming batch size (serving mode). Each batch draws from its \
             own PRNG child stream, so for a fixed (seed, batch) the \
             estimate is bitwise identical at every domain count.")
  in
  let sampler_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("polar", Randkit.Gaussian.Polar);
               ("ziggurat", Randkit.Gaussian.Ziggurat);
             ])
          Randkit.Gaussian.Polar
      & info [ "sampler" ] ~docv:"NAME"
          ~doc:
            "Normal sampler for the Monte-Carlo draws: 'polar' (sequential, \
             the historical bit stream, default) or 'ziggurat' (the \
             counter-mode engine — every draw a pure function of (seed, \
             point, coordinate), so the estimate is invariant to batch size \
             and domain count and the draw can be projected onto the model's \
             touched variables).")
  in
  let project_arg =
    Arg.(
      value
      & vflag None
          [
            ( Some true,
              info [ "project" ]
                ~doc:
                  "Draw only the coordinates the model actually reads \
                   (requires --sampler ziggurat; on by default with it). \
                   Bitwise identical to the full draw — only faster." );
            ( Some false,
              info [ "no-project" ]
                ~doc:
                  "Draw every coordinate even under --sampler ziggurat \
                   (same bits as --project, proportionally slower)." );
          ])
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one machine-readable JSON object on stdout instead of the \
             human report: workload, model digest, spec window, sampler and \
             projection, yield, standard error, pass/samples, batching and \
             throughput.")
  in
  let run circuit metric cells parasitics seed samples max_lambda lower upper
      served_model mc_samples batch sampler project json domains engine =
    check_at_least "mc-samples" 1 mc_samples;
    check_at_least "batch" 1 batch;
    if lower = Float.neg_infinity && upper = Float.infinity then
      err_exit "give at least one of --lower / --upper";
    (* Projection defaults to on exactly when the sampler supports it;
       asking for it with the sequential polar stream is a contradiction
       (skipping a coordinate would shift every later draw's bits). *)
    let project =
      match project with
      | Some p -> p
      | None -> sampler = Randkit.Gaussian.Ziggurat
    in
    if project && sampler = Randkit.Gaussian.Polar then
      err_exit "config: --project requires --sampler ziggurat";
    let spec = Rsm.Yield.spec_both ~lower ~upper in
    let print_closed_form model basis =
      match Rsm.Yield.gaussian model basis spec with
      | g -> Printf.printf "  closed-form yield : %.4f (linear model => Gaussian)\n" g
      | exception Invalid_argument _ -> ()
    in
    match served_model with
    | Some model_file ->
        (* Serving mode: no simulations at all — the whole estimate is
           model evaluations on the compiled tape. *)
        check_sizes ~cells ~parasitics;
        (match make_workload ~circuit ~metric ~cells ~parasitics with
        | Error e -> err_exit e
        | Ok w ->
            let pool = use_domains domains in
            let basis = Polybasis.Basis.constant_linear w.dim in
            let entry = load_served basis model_file in
            let tape = entry.Serve.Registry.tape in
            let model = entry.Serve.Registry.model in
            let rng = Randkit.Prng.create seed in
            let e, mc_s =
              Circuit.Testbench.timed (fun () ->
                  Serve.Stream.estimate ~pool ~batch ~sampler ~project
                    ~samples:mc_samples tape rng spec)
            in
            let rate =
              if mc_s > 0. then float_of_int mc_samples /. mc_s
              else Float.infinity
            in
            let drawn =
              if project then Serve.Eval.vars_touched tape
              else Serve.Eval.dim tape
            in
            if json then
              Printf.printf
                {|{"workload": "%s", "mode": "serve", "model_file": "%s", "digest": "%016Lx", "spec": {"lower": %s, "upper": %s}, "sampler": "%s", "projected": %b, "coords_drawn": %d, "dim": %d, "yield": %.17g, "std_error": %.17g, "pass": %d, "samples": %d, "mean": %.17g, "std": %.17g, "batches": %d, "batch": %d, "unit": "%s", "throughput_evals_per_s": %.6g, "notes": [%s]}
|}
                (json_escape w.name) (json_escape model_file)
                entry.Serve.Registry.digest (json_bound lower)
                (json_bound upper)
                (Randkit.Gaussian.sampler_name sampler)
                project drawn (Serve.Eval.dim tape) e.Serve.Stream.yield
                e.Serve.Stream.std_error e.Serve.Stream.pass
                e.Serve.Stream.samples e.Serve.Stream.mean e.Serve.Stream.std
                e.Serve.Stream.batches e.Serve.Stream.batch
                (json_escape w.unit_) rate (json_notes model)
            else begin
              Printf.printf
                "%s | spec [%g, %g] %s | served %d-term model %s (digest \
                 %016Lx)\n"
                w.name lower upper w.unit_ (Rsm.Model.nnz model) model_file
                entry.Serve.Registry.digest;
              Printf.printf
                "  model-MC yield    : %.4f +/- %.4f (%d of %d pass)\n"
                e.Serve.Stream.yield e.Serve.Stream.std_error
                e.Serve.Stream.pass e.Serve.Stream.samples;
              print_closed_form model basis;
              Printf.printf "  sample mean/sigma : %.4f / %.4f %s\n"
                e.Serve.Stream.mean e.Serve.Stream.std w.unit_;
              Printf.printf
                "  streamed          : %d batches of %d over the pool (%.3g \
                 evals/s)\n"
                e.Serve.Stream.batches e.Serve.Stream.batch rate;
              Printf.printf "  sampler           : %s (%d of %d coords drawn)\n"
                (Randkit.Gaussian.sampler_name sampler)
                drawn (Serve.Eval.dim tape)
            end)
    | None ->
        let w, basis, model, rng =
          fit_for_use ~circuit ~metric ~cells ~parasitics ~seed ~samples
            ~max_lambda ~domains ~engine
        in
        (* Compiled fast path: bitwise equal to the naive term-by-term
           walk, so the default estimate (and this output) is
           unchanged. Under the ziggurat sampler the draw is projected
           onto the tape's touched variables — the same addressing as
           serving mode, so the estimate equals a streamed one bit for
           bit. *)
        let tape = Serve.Eval.compile model basis in
        let touched =
          if project then Some (Serve.Eval.touched_vars tape) else None
        in
        let y, se =
          Rsm.Yield.monte_carlo ~samples:mc_samples
            ~eval:(Serve.Eval.evaluator tape) ~sampler ?touched model basis
            rng spec
        in
        let drawn =
          if project then Serve.Eval.vars_touched tape
          else Serve.Eval.dim tape
        in
        if json then
          (* y is pass/mc_samples exactly, so the pass count
             round-trips through the product. *)
          let pass = int_of_float (Float.round (y *. float_of_int mc_samples)) in
          Printf.printf
            {|{"workload": "%s", "mode": "fit", "digest": "%016Lx", "spec": {"lower": %s, "upper": %s}, "sampler": "%s", "projected": %b, "coords_drawn": %d, "dim": %d, "yield": %.17g, "std_error": %.17g, "pass": %d, "samples": %d, "model_mean": %.17g, "model_sigma": %.17g, "unit": "%s", "notes": [%s]}
|}
            (json_escape w.name)
            (Rsm.Serialize.digest model)
            (json_bound lower) (json_bound upper)
            (Randkit.Gaussian.sampler_name sampler)
            project drawn (Serve.Eval.dim tape) y se pass mc_samples
            (Rsm.Sensitivity.mean model basis)
            (sqrt (Rsm.Sensitivity.total_variance model basis))
            (json_escape w.unit_) (json_notes model)
        else begin
          Printf.printf
            "%s | spec [%g, %g] %s | model from %d simulations (%d bases)\n"
            w.name lower upper w.unit_ samples (Rsm.Model.nnz model);
          Printf.printf "  model-MC yield    : %.4f +/- %.4f\n" y se;
          print_closed_form model basis;
          Printf.printf "  model mean/sigma  : %.4f / %.4f %s\n"
            (Rsm.Sensitivity.mean model basis)
            (sqrt (Rsm.Sensitivity.total_variance model basis))
            w.unit_;
          if sampler <> Randkit.Gaussian.Polar then
            Printf.printf "  sampler           : %s (%d of %d coords drawn)\n"
              (Randkit.Gaussian.sampler_name sampler)
              drawn (Serve.Eval.dim tape)
        end
  in
  Cmd.v
    (Cmd.info "yield"
       ~doc:
         "Estimate parametric yield against a spec window, either from a \
          freshly fitted model or by serving a saved one (--model).")
    Term.(
      const run $ circuit $ metric $ cells $ parasitics $ seed $ samples
      $ max_lambda_arg $ lower_arg $ upper_arg $ served_model_arg
      $ mc_samples_arg $ batch_arg $ sampler_arg $ project_arg $ json_arg
      $ domains $ engine)

let sensitivity_cmd =
  let run circuit metric cells parasitics seed samples max_lambda domains engine
      =
    let w, basis, model, _rng =
      fit_for_use ~circuit ~metric ~cells ~parasitics ~seed ~samples ~max_lambda
        ~domains ~engine
    in
    Printf.printf "%s | variance attribution from %d simulations (%d bases)\n"
      w.name samples (Rsm.Model.nnz model);
    Printf.printf "  model sigma: %.4f %s, interaction share %.1f%%\n"
      (sqrt (Rsm.Sensitivity.total_variance model basis))
      w.unit_
      (100. *. Rsm.Sensitivity.interaction_share model basis);
    Array.iter
      (fun (factor, share) ->
        Printf.printf "  factor %6d : %5.1f%%\n" factor (100. *. share))
      (Rsm.Sensitivity.top_factors ~n:12 model basis)
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Rank variation sources by their share of the modeled variance.")
    Term.(
      const run $ circuit $ metric $ cells $ parasitics $ seed $ samples
      $ max_lambda_arg $ domains $ engine)

let corner_cmd =
  let sigma_arg =
    Arg.(value & opt float 3. & info [ "sigma" ] ~docv:"K"
           ~doc:"Process radius in sigmas.")
  in
  let maximize_arg =
    Arg.(value & flag & info [ "maximize" ]
           ~doc:"Find the largest value (default: smallest).")
  in
  let run circuit metric cells parasitics seed samples max_lambda sigma maximize
      domains engine =
    let w, basis, model, _ =
      fit_for_use ~circuit ~metric ~cells ~parasitics ~seed ~samples ~max_lambda
        ~domains ~engine
    in
    let e = Rsm.Corner.linear_worst model basis ~sigma ~maximize in
    Printf.printf "%s | %s corner at %.1f sigma (model from %d simulations)\n"
      w.name (if maximize then "worst-high" else "worst-low") sigma samples;
    Printf.printf "  model extremum : %.4f %s\n" e.Rsm.Corner.value w.unit_;
    Printf.printf "  simulated there: %.4f %s\n" (w.sim.Circuit.Simulator.eval e.Rsm.Corner.corner) w.unit_;
    let nonzero =
      Array.to_list (Array.mapi (fun i v -> (i, v)) e.Rsm.Corner.corner)
      |> List.filter (fun (_, v) -> Float.abs v > 1e-9)
      |> List.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a))
    in
    Printf.printf "  corner touches %d factors; strongest:\n" (List.length nonzero);
    List.iteri
      (fun i (j, v) ->
        if i < 6 then Printf.printf "    factor %6d = %+.3f sigma\n" j v)
      nonzero
  in
  Cmd.v
    (Cmd.info "corner"
       ~doc:"Extract the worst-case process corner from a fitted model.")
    Term.(
      const run $ circuit $ metric $ cells $ parasitics $ seed $ samples
      $ max_lambda_arg $ sigma_arg $ maximize_arg $ domains $ engine)

let () =
  let info =
    Cmd.info "rsm" ~version:"1.0"
      ~doc:
        "Large-scale analog/RF performance variability modeling by sparse \
         regression (OMP / LAR / STAR / LS)."
  in
  (* ~catch:false so exceptions reach our guard instead of cmdliner's
     backtrace printer; every failure becomes one "rsm: ..." line. *)
  let code =
    match
      Robust.Error.guard (fun () ->
          Cmd.eval ~catch:false
            (Cmd.group info
               [ info_cmd; mc_cmd; model_cmd; predict_cmd; eval_cmd; yield_cmd;
                 sensitivity_cmd; corner_cmd ]))
    with
    | Ok code -> code
    | Error e ->
        prerr_endline ("rsm: " ^ Robust.Error.to_string e);
        2
  in
  exit code
