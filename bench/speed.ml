(* Fitting-kernel speed: bechamel micro-benchmarks per paper table, plus
   a sequential-vs-parallel comparison of the four parallelized hot
   paths (design matrix, Gᵀ·r correlation sweep, Q-fold CV, Monte-Carlo
   simulation batch) that emits a JSON speedup report. *)

open Bechamel
open Toolkit

let make_problem ~k ~m ~p seed =
  let rng = Randkit.Prng.create seed in
  let g = Randkit.Gaussian.matrix rng k m in
  let support = Randkit.Sampling.subsample rng (Array.init m Fun.id) p in
  let f =
    Array.init k (fun i ->
        let acc = ref (0.1 *. Randkit.Gaussian.sample rng) in
        Array.iter (fun j -> acc := !acc +. Linalg.Mat.get g i j) support;
        !acc)
  in
  (g, f)

let tests () =
  (* Table I shape: OpAmp linear, K = 600, M = 631. *)
  let g1, f1 = make_problem ~k:600 ~m:631 ~p:30 1 in
  (* Tables II-III shape: quadratic dictionary, K = 500, M ~ 1891. *)
  let g2, f2 = make_problem ~k:500 ~m:1891 ~p:60 2 in
  (* Table IV shape: SRAM linear, K = 500, M = 1510. *)
  let g4, f4 = make_problem ~k:500 ~m:1510 ~p:40 3 in
  (* LS baseline shape: over-determined 700x631 normal equations. *)
  let gls, fls = make_problem ~k:700 ~m:631 ~p:30 4 in
  let amp = Circuit.Opamp.build ~n_parasitics:50 () in
  let basis = Polybasis.Basis.constant_linear (Circuit.Opamp.dim amp) in
  let rng = Randkit.Prng.create 5 in
  let pts = Array.init 100 (fun _ -> Randkit.Gaussian.vector rng (Circuit.Opamp.dim amp)) in
  [
    Test.make ~name:"table1: OMP linear 600x631"
      (Staged.stage (fun () -> ignore (Rsm.Omp.fit g1 f1 ~lambda:30)));
    Test.make ~name:"table2/3: OMP quadratic 500x1891"
      (Staged.stage (fun () -> ignore (Rsm.Omp.fit g2 f2 ~lambda:60)));
    Test.make ~name:"table4: OMP sram 500x1510"
      (Staged.stage (fun () -> ignore (Rsm.Omp.fit g4 f4 ~lambda:40)));
    Test.make ~name:"table1: LS baseline 700x631"
      (Staged.stage (fun () -> ignore (Rsm.Ls.fit ~method_:Linalg.Lstsq.Normal gls fls)));
    Test.make ~name:"fig4: LAR linear 600x631"
      (Staged.stage (fun () ->
           ignore (Rsm.Lars.fit ~mode:Rsm.Lars.Lar g1 f1 ~lambda:30)));
    Test.make ~name:"fig4: STAR linear 600x631"
      (Staged.stage (fun () -> ignore (Rsm.Star.fit g1 f1 ~lambda:30)));
    Test.make ~name:"design matrix 100x131"
      (Staged.stage (fun () -> ignore (Polybasis.Design.matrix_rows basis pts)));
  ]

let bechamel () =
  Printf.printf "\n=== Bechamel fitting-kernel timings ===\n%!";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 2.0) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Printf.printf "%-36s %12.3f ms/run\n%!" name (est /. 1e6)
          | _ -> Printf.printf "%-36s (no estimate)\n%!" name)
        stats)
    (tests ())

(* --- sequential vs parallel speedup report ------------------------- *)

(* Best-of-R wall clock: robust against scheduler noise without needing
   bechamel's regression machinery for multi-millisecond kernels. *)
let best_of ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

type kernel = { name : string; run : Parallel.Pool.t -> unit }

(* The default SRAM workload: the paper's headline case at bench scale. *)
let sram_kernels ~quick =
  let cells = if quick then 24 else 120 in
  let k = if quick then 60 else 400 in
  let mc = if quick then 200 else 2000 in
  let sram = Circuit.Sram.build ~cells () in
  let sim = Circuit.Sram.simulator sram in
  let dim = Circuit.Sram.dim sram in
  let basis = Polybasis.Basis.constant_linear dim in
  let rng = Randkit.Prng.create 11 in
  let pts = Array.init k (fun _ -> Randkit.Gaussian.vector rng dim) in
  let g = Polybasis.Design.matrix_rows ~pool:(Parallel.Pool.create ~domains:1 ()) basis pts in
  let f = Array.map (fun p -> sim.Circuit.Simulator.eval p) pts in
  let res = Randkit.Gaussian.vector rng k in
  let skip = Array.make (Polybasis.Basis.size basis) false in
  let lambda = min 20 (min k (Polybasis.Basis.size basis)) in
  [
    {
      name = "design_matrix";
      run = (fun pool -> ignore (Polybasis.Design.matrix_rows ~pool basis pts));
    };
    {
      name = "omp_corr_sweep";
      run =
        (fun pool ->
          let src = Polybasis.Design.Provider.dense g in
          for _ = 1 to 20 do
            ignore (Rsm.Corr_sweep.argmax_abs ~pool ~skip src res)
          done);
    };
    {
      name = "omp_fit";
      run = (fun pool -> ignore (Rsm.Omp.fit ~pool g f ~lambda));
    };
    {
      name = "cv_select_omp";
      run =
        (fun pool ->
          let rng = Randkit.Prng.create 17 in
          ignore (Rsm.Select.omp ~pool rng ~max_lambda:(min 10 lambda) g f));
    };
    {
      name = "simulator_batch";
      run =
        (fun pool ->
          let rng = Randkit.Prng.create 23 in
          ignore (Circuit.Simulator.run ~pool sim rng ~k:mc));
    };
  ]

(* Dense vs streamed correlation sweep over the same quadratic
   dictionary: the acceptance gate for the matrix-free engine is that
   streaming the Hermite tiles stays within a small factor of reading a
   materialized matrix. *)
let sweep_kernels ~quick =
  let n = if quick then 44 else 139 in
  let k = if quick then 120 else 500 in
  let reps = if quick then 4 else 6 in
  let basis = Polybasis.Basis.quadratic n in
  let rng = Randkit.Prng.create 31 in
  let pts = Array.init k (fun _ -> Randkit.Gaussian.vector rng n) in
  let streamed = Polybasis.Design.Provider.streamed basis pts in
  let dense =
    Polybasis.Design.Provider.dense
      (Polybasis.Design.matrix_rows
         ~pool:(Parallel.Pool.create ~domains:1 ())
         basis pts)
  in
  let res = Randkit.Gaussian.vector rng k in
  let sweep src pool =
    for _ = 1 to reps do
      ignore (Rsm.Corr_sweep.gram_tr ~pool src res)
    done
  in
  [
    { name = "sweep_dense"; run = sweep dense };
    { name = "sweep_streamed"; run = sweep streamed };
  ]

(* Paper-scale matrix-free OMP: M ≈ 10⁵ columns (quick: 10⁴) that are
   never materialized. Runs before everything else so the VmHWM reading
   reflects this scenario's footprint. *)
type bigm_report = {
  bm : int;
  bk : int;
  blambda : int;
  fit_s : float;
  rss_mb : float;
  bnnz : int;
}

let bigm ~quick ~pool =
  let n = if quick then 140 else 446 in
  let k = if quick then 150 else 500 in
  let lambda = if quick then 8 else 15 in
  let basis = Polybasis.Basis.quadratic n in
  let m = Polybasis.Basis.size basis in
  let rng = Randkit.Prng.create 41 in
  let pts = Array.init k (fun _ -> Randkit.Gaussian.vector rng n) in
  let src = Polybasis.Design.Provider.streamed basis pts in
  (* Sparse synthetic response: a handful of true columns plus noise. *)
  let p_true = min 10 lambda in
  let support = Randkit.Sampling.subsample rng (Array.init m Fun.id) p_true in
  let f = Array.init k (fun _ -> 0.05 *. Randkit.Gaussian.sample rng) in
  Array.iter
    (fun j ->
      let col = Polybasis.Design.Provider.column src j in
      for i = 0 to k - 1 do
        f.(i) <- f.(i) +. col.(i)
      done)
    support;
  let t0 = Unix.gettimeofday () in
  let model = Rsm.Omp.fit_p ~pool src f ~lambda in
  let fit_s = Unix.gettimeofday () -. t0 in
  let rss_mb = Bench_util.peak_rss_mb () in
  Printf.printf
    "bigm (matrix-free OMP): K=%d M=%d lambda=%d  fit %.2f s  nnz %d  peak \
     RSS %.0f MB\n\
     %!"
    k m lambda fit_s (Rsm.Model.nnz model) rss_mb;
  { bm = m; bk = k; blambda = lambda; fit_s; rss_mb; bnnz = Rsm.Model.nnz model }

let out_dir = Filename.concat "bench" "out"

let ensure_out_dir () =
  (try Unix.mkdir "bench" 0o755 with Unix.Unix_error _ -> ());
  try Unix.mkdir out_dir 0o755 with Unix.Unix_error _ -> ()

let speedup ~quick ~domains () =
  let domains =
    match domains with Some d -> d | None -> Parallel.Pool.default_domains ()
  in
  let reps = if quick then 2 else 3 in
  Printf.printf "\n=== Matrix-free big-M scenario ===\n%!" ;
  let seq_pool = Parallel.Pool.create ~domains:1 () in
  let par_pool = Parallel.Pool.create ~domains () in
  (* First, before any dense matrices are built, so VmHWM is this
     scenario's peak. *)
  let big = bigm ~quick ~pool:par_pool in
  let kernels = sram_kernels ~quick @ sweep_kernels ~quick in
  Printf.printf "\n=== Sequential vs parallel (%d domain%s) ===\n%!" domains
    (if domains = 1 then "" else "s");
  let rows =
    List.map
      (fun kernel ->
        (* Warm both arms once so allocation effects are shared. *)
        kernel.run seq_pool;
        kernel.run par_pool;
        let seq_s = best_of ~reps (fun () -> kernel.run seq_pool) in
        let par_s = best_of ~reps (fun () -> kernel.run par_pool) in
        let sp = seq_s /. par_s in
        Printf.printf "%-18s seq %8.1f ms   par %8.1f ms   speedup %5.2fx\n%!"
          kernel.name (1e3 *. seq_s) (1e3 *. par_s) sp;
        (kernel.name, seq_s, par_s, sp))
      kernels
  in
  Parallel.Pool.shutdown seq_pool;
  Parallel.Pool.shutdown par_pool;
  let json =
    let b = Buffer.create 512 in
    Buffer.add_string b "{\n";
    Buffer.add_string b (Printf.sprintf "  \"domains\": %d,\n" domains);
    Buffer.add_string b
      (Printf.sprintf
         "  \"bigm\": {\"m\": %d, \"k\": %d, \"lambda\": %d, \"fit_s\": %.3f, \
          \"peak_rss_mb\": %.1f, \"nnz\": %d},\n"
         big.bm big.bk big.blambda big.fit_s big.rss_mb big.bnnz);
    Buffer.add_string b "  \"kernels\": [\n";
    List.iteri
      (fun i (name, seq_s, par_s, sp) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"name\": %S, \"seq_s\": %.6f, \"par_s\": %.6f, \
              \"speedup\": %.3f}%s\n"
             name seq_s par_s sp
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string b "  ]\n}\n";
    Buffer.contents b
  in
  print_string json;
  ensure_out_dir ();
  let report = Filename.concat out_dir "speed_report.json" in
  let oc = open_out report in
  output_string oc json;
  close_out oc;
  Printf.printf "JSON report written to %s\n%!" report;
  (* One-line summary entry in the canonical tracked report. *)
  let payload =
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"domains\": %d, \"bigm\": {\"m\": %d, \"k\": %d, \"fit_s\": %.3f, \
          \"peak_rss_mb\": %.1f}, \"kernels\": {"
         domains big.bm big.bk big.fit_s big.rss_mb);
    List.iteri
      (fun i (name, seq_s, par_s, sp) ->
        Buffer.add_string b
          (Printf.sprintf
             "%s\"%s\": {\"seq_s\": %.6f, \"par_s\": %.6f, \"speedup\": %.3f}"
             (if i = 0 then "" else ", ")
             name seq_s par_s sp))
      rows;
    Buffer.add_string b "}}";
    Buffer.contents b
  in
  Bench_util.update_summary ~scenario:"speed" ~payload;
  Printf.printf "summary updated in %s\n%!" Bench_util.summary_file

(* --- gram-cached sweep engine scenario ----------------------------- *)

(* Median-of-R wall clock for the per-step sweep kernels: a median is
   the right summary when each rep does identical work and we report a
   ratio of two of them. *)
let median_of ~reps f =
  let ts =
    Array.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  Array.sort compare ts;
  ts.(reps / 2)

let rel_gap a b =
  let scale = max (Float.abs a) (Float.abs b) in
  if scale = 0. then 0. else Float.abs (a -. b) /. scale

(* Per-step sweep-phase cost of the gram-cached incremental correlation
   engine against the exact full sweep, and the fused multi-residual CV
   sweep against Q per-fold sweeps — at paper-scale M (quadratic
   dictionary, M ≈ 5·10⁴) unless --quick. Every timed kernel is guarded
   by its parity contract (incremental ≤ 1e-10 relative, fused bitwise);
   a violation fails the bench with exit 1, so this scenario doubles as
   the sweep-parity smoke for CI. *)
let sweep_scenario ~quick ~domains () =
  let domains =
    match domains with Some d -> d | None -> Parallel.Pool.default_domains ()
  in
  let n = if quick then 60 else 316 in
  let k = if quick then 120 else 500 in
  let p = if quick then 8 else 20 in
  let q = 4 in
  let reps = if quick then 3 else 5 in
  let basis = Polybasis.Basis.quadratic n in
  let m = Polybasis.Basis.size basis in
  let rng = Randkit.Prng.create 47 in
  let pts = Array.init k (fun _ -> Randkit.Gaussian.vector rng n) in
  let src = Polybasis.Design.Provider.streamed basis pts in
  let res = Randkit.Gaussian.vector rng k in
  let support = Randkit.Sampling.subsample rng (Array.init m Fun.id) p in
  Array.sort compare support;
  let skip = Array.make m false in
  let assignment =
    Randkit.Sampling.fold_assignment (Randkit.Prng.create 53) ~n:k ~folds:q
  in
  let fold_rows =
    Array.init q (fun fq -> fst (Randkit.Sampling.fold_split assignment fq))
  in
  let fold_res =
    Array.map (fun rows -> Array.map (fun i -> res.(i)) rows) fold_rows
  in
  let fold_skips = Array.init q (fun _ -> Array.make m false) in
  let failures = ref 0 in
  let check name ok =
    if not ok then begin
      incr failures;
      Printf.printf "PARITY FAILURE: %s\n%!" name
    end
  in
  Printf.printf
    "\n=== Sweep engine scenario: K=%d M=%d p=%d Q=%d (%d domain%s) ===\n%!"
    k m p q domains (if domains = 1 then "" else "s");
  let measure domains =
    let pool = Parallel.Pool.create ~domains () in
    (* Incremental arm: cache the p active Gram columns, then time one
       per-step selection sweep = delta update (O(p·M)) + argmax read
       (O(M)) against the exact argmax sweep (O(K·M) with streamed
       column generation). *)
    let inc = Rsm.Corr_sweep.Inc.create ~pool ~refresh:0 src res in
    Array.iter
      (fun j ->
        Rsm.Corr_sweep.Inc.ensure_gram inc j
          (Polybasis.Design.Provider.column src j))
      support;
    let deltas =
      Array.mapi
        (fun i j -> (j, (if i mod 2 = 0 then 1e-9 else -1e-9)))
        support
    in
    (* Parity: push a real coefficient movement through the delta path
       and compare against an exact sweep of the moved residual. *)
    let real_deltas = Array.map (fun j -> (j, 1e-3)) support in
    Rsm.Corr_sweep.Inc.apply_deltas inc real_deltas;
    let moved = Array.copy res in
    Array.iter
      (fun j ->
        let col = Polybasis.Design.Provider.column src j in
        for i = 0 to k - 1 do
          moved.(i) <- moved.(i) -. (1e-3 *. col.(i))
        done)
      support;
    let exact_moved = Rsm.Corr_sweep.gram_tr ~pool src moved in
    let c = Rsm.Corr_sweep.Inc.correlations inc in
    let worst = ref 0. in
    Array.iteri
      (fun j v -> worst := Float.max !worst (rel_gap v c.(j)))
      exact_moved;
    check
      (Printf.sprintf "incremental vs exact correlations (%.2e rel)" !worst)
      (!worst <= 1e-10);
    let exact_sweep_s =
      median_of ~reps (fun () ->
          ignore (Rsm.Corr_sweep.argmax_abs ~pool ~skip src res))
    in
    let inc_sweep_s =
      median_of ~reps (fun () ->
          Rsm.Corr_sweep.Inc.apply_deltas inc deltas;
          ignore (Rsm.Corr_sweep.Inc.argmax_abs ~skip inc))
    in
    (* Fused arm: one multi-residual sweep against Q per-fold sweeps
       over row-subset providers — same numbers, column generation paid
       once. *)
    let per_fold () =
      Array.init q (fun fq ->
          Rsm.Corr_sweep.gram_tr ~pool
            (Polybasis.Design.Provider.select_rows src fold_rows.(fq))
            fold_res.(fq))
    in
    let fused () =
      Rsm.Corr_sweep.gram_tr_multi ~pool src ~rows:fold_rows fold_res
    in
    let ref_out = per_fold () and fused_out = fused () in
    check "fused multi-sweep bitwise vs per-fold sweeps"
      (Array.for_all2 (fun a b -> a = b) ref_out fused_out);
    let picks =
      Rsm.Corr_sweep.argmax_abs_multi ~pool ~skips:fold_skips src
        ~rows:fold_rows fold_res
    in
    check "fused argmax bitwise vs per-fold argmax"
      (Array.for_all2
         (fun (j, v) cref ->
           let j', v' =
             let best = ref (-1) and best_v = ref 0. in
             Array.iteri
               (fun jj cv ->
                 if Float.abs cv > !best_v then begin
                   best := jj;
                   best_v := Float.abs cv
                 end)
               cref;
             (!best, !best_v)
           in
           j = j' && v = v')
         picks ref_out);
    let fold_sweep_s = median_of ~reps (fun () -> ignore (per_fold ())) in
    let fused_sweep_s = median_of ~reps (fun () -> ignore (fused ())) in
    Parallel.Pool.shutdown pool;
    Printf.printf
      "domains=%d  exact %8.2f ms  incremental %8.2f ms  (%.1fx)\n\
       domains=%d  %d-fold %8.2f ms  fused       %8.2f ms  (%.1fx)\n%!"
      domains (1e3 *. exact_sweep_s) (1e3 *. inc_sweep_s)
      (exact_sweep_s /. inc_sweep_s)
      domains q (1e3 *. fold_sweep_s) (1e3 *. fused_sweep_s)
      (fold_sweep_s /. fused_sweep_s);
    (exact_sweep_s, inc_sweep_s, fold_sweep_s, fused_sweep_s)
  in
  let arms =
    if domains = 1 then [ (1, measure 1) ]
    else begin
      let one = measure 1 in
      let par = measure domains in
      [ (1, one); (domains, par) ]
    end
  in
  let rss_mb = Bench_util.peak_rss_mb () in
  (* Column-generation work: rows whose streamed basis entries each
     per-step sweep evaluates, per column. Q per-fold sweeps regenerate
     every column on their own train rows (Σ|train_q| = (Q−1)·K rows);
     the fused sweep generates each column once over the K union rows. *)
  let gen_rows_per_fold =
    Array.fold_left (fun acc rows -> acc + Array.length rows) 0 fold_rows
  in
  let gen_work_ratio = float_of_int gen_rows_per_fold /. float_of_int k in
  Printf.printf
    "column generation: per-fold %d rows/column, fused %d rows/column \
     (%.1fx less generation work)\n%!"
    gen_rows_per_fold k gen_work_ratio;
  let payload =
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"m\": %d, \"k\": %d, \"p\": %d, \"q\": %d, \
          \"gen_rows_per_fold\": %d, \"gen_rows_fused\": %d, \
          \"gen_work_ratio\": %.2f, \"per_domains\": {"
         m k p q gen_rows_per_fold k gen_work_ratio);
    List.iteri
      (fun i (d, (ex, inc, fold, fused)) ->
        Buffer.add_string b
          (Printf.sprintf
             "%s\"%d\": {\"exact_sweep_s\": %.6f, \"inc_sweep_s\": %.6f, \
              \"inc_speedup\": %.2f, \"fold_sweep_s\": %.6f, \
              \"fused_sweep_s\": %.6f, \"fused_speedup\": %.2f}"
             (if i = 0 then "" else ", ")
             d ex inc (ex /. inc) fold fused (fold /. fused)))
      arms;
    Buffer.add_string b (Printf.sprintf "}, \"peak_rss_mb\": %.1f}" rss_mb);
    Buffer.contents b
  in
  Bench_util.update_summary ~scenario:"sweep" ~payload;
  Printf.printf "summary updated in %s\n%!" Bench_util.summary_file;
  if !failures > 0 then begin
    Printf.printf "sweep scenario: %d parity failure(s)\n%!" !failures;
    exit 1
  end

let run ?(quick = false) ?domains () =
  speedup ~quick ~domains ();
  if not quick then bechamel ()
