(* Fitting-kernel speed: bechamel micro-benchmarks per paper table, plus
   a sequential-vs-parallel comparison of the four parallelized hot
   paths (design matrix, Gᵀ·r correlation sweep, Q-fold CV, Monte-Carlo
   simulation batch) that emits a JSON speedup report. *)

open Bechamel
open Toolkit

let make_problem ~k ~m ~p seed =
  let rng = Randkit.Prng.create seed in
  let g = Randkit.Gaussian.matrix rng k m in
  let support = Randkit.Sampling.subsample rng (Array.init m Fun.id) p in
  let f =
    Array.init k (fun i ->
        let acc = ref (0.1 *. Randkit.Gaussian.sample rng) in
        Array.iter (fun j -> acc := !acc +. Linalg.Mat.get g i j) support;
        !acc)
  in
  (g, f)

let tests () =
  (* Table I shape: OpAmp linear, K = 600, M = 631. *)
  let g1, f1 = make_problem ~k:600 ~m:631 ~p:30 1 in
  (* Tables II-III shape: quadratic dictionary, K = 500, M ~ 1891. *)
  let g2, f2 = make_problem ~k:500 ~m:1891 ~p:60 2 in
  (* Table IV shape: SRAM linear, K = 500, M = 1510. *)
  let g4, f4 = make_problem ~k:500 ~m:1510 ~p:40 3 in
  (* LS baseline shape: over-determined 700x631 normal equations. *)
  let gls, fls = make_problem ~k:700 ~m:631 ~p:30 4 in
  let amp = Circuit.Opamp.build ~n_parasitics:50 () in
  let basis = Polybasis.Basis.constant_linear (Circuit.Opamp.dim amp) in
  let rng = Randkit.Prng.create 5 in
  let pts = Array.init 100 (fun _ -> Randkit.Gaussian.vector rng (Circuit.Opamp.dim amp)) in
  [
    Test.make ~name:"table1: OMP linear 600x631"
      (Staged.stage (fun () -> ignore (Rsm.Omp.fit g1 f1 ~lambda:30)));
    Test.make ~name:"table2/3: OMP quadratic 500x1891"
      (Staged.stage (fun () -> ignore (Rsm.Omp.fit g2 f2 ~lambda:60)));
    Test.make ~name:"table4: OMP sram 500x1510"
      (Staged.stage (fun () -> ignore (Rsm.Omp.fit g4 f4 ~lambda:40)));
    Test.make ~name:"table1: LS baseline 700x631"
      (Staged.stage (fun () -> ignore (Rsm.Ls.fit ~method_:Linalg.Lstsq.Normal gls fls)));
    Test.make ~name:"fig4: LAR linear 600x631"
      (Staged.stage (fun () ->
           ignore (Rsm.Lars.fit ~mode:Rsm.Lars.Lar g1 f1 ~lambda:30)));
    Test.make ~name:"fig4: STAR linear 600x631"
      (Staged.stage (fun () -> ignore (Rsm.Star.fit g1 f1 ~lambda:30)));
    Test.make ~name:"design matrix 100x131"
      (Staged.stage (fun () -> ignore (Polybasis.Design.matrix_rows basis pts)));
  ]

let bechamel () =
  Printf.printf "\n=== Bechamel fitting-kernel timings ===\n%!";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 2.0) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Printf.printf "%-36s %12.3f ms/run\n%!" name (est /. 1e6)
          | _ -> Printf.printf "%-36s (no estimate)\n%!" name)
        stats)
    (tests ())

(* --- sequential vs parallel speedup report ------------------------- *)

(* Best-of-R wall clock: robust against scheduler noise without needing
   bechamel's regression machinery for multi-millisecond kernels. *)
let best_of ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

type kernel = { name : string; run : Parallel.Pool.t -> unit }

(* The default SRAM workload: the paper's headline case at bench scale. *)
let sram_kernels ~quick =
  let cells = if quick then 24 else 120 in
  let k = if quick then 60 else 400 in
  let mc = if quick then 200 else 2000 in
  let sram = Circuit.Sram.build ~cells () in
  let sim = Circuit.Sram.simulator sram in
  let dim = Circuit.Sram.dim sram in
  let basis = Polybasis.Basis.constant_linear dim in
  let rng = Randkit.Prng.create 11 in
  let pts = Array.init k (fun _ -> Randkit.Gaussian.vector rng dim) in
  let g = Polybasis.Design.matrix_rows ~pool:(Parallel.Pool.create ~domains:1 ()) basis pts in
  let f = Array.map (fun p -> sim.Circuit.Simulator.eval p) pts in
  let res = Randkit.Gaussian.vector rng k in
  let skip = Array.make (Polybasis.Basis.size basis) false in
  let lambda = min 20 (min k (Polybasis.Basis.size basis)) in
  [
    {
      name = "design_matrix";
      run = (fun pool -> ignore (Polybasis.Design.matrix_rows ~pool basis pts));
    };
    {
      name = "omp_corr_sweep";
      run =
        (fun pool ->
          let src = Polybasis.Design.Provider.dense g in
          for _ = 1 to 20 do
            ignore (Rsm.Corr_sweep.argmax_abs ~pool ~skip src res)
          done);
    };
    {
      name = "omp_fit";
      run = (fun pool -> ignore (Rsm.Omp.fit ~pool g f ~lambda));
    };
    {
      name = "cv_select_omp";
      run =
        (fun pool ->
          let rng = Randkit.Prng.create 17 in
          ignore (Rsm.Select.omp ~pool rng ~max_lambda:(min 10 lambda) g f));
    };
    {
      name = "simulator_batch";
      run =
        (fun pool ->
          let rng = Randkit.Prng.create 23 in
          ignore (Circuit.Simulator.run ~pool sim rng ~k:mc));
    };
  ]

(* Dense vs streamed correlation sweep over the same quadratic
   dictionary: the acceptance gate for the matrix-free engine is that
   streaming the Hermite tiles stays within a small factor of reading a
   materialized matrix. *)
let sweep_kernels ~quick =
  let n = if quick then 44 else 139 in
  let k = if quick then 120 else 500 in
  let reps = if quick then 4 else 6 in
  let basis = Polybasis.Basis.quadratic n in
  let rng = Randkit.Prng.create 31 in
  let pts = Array.init k (fun _ -> Randkit.Gaussian.vector rng n) in
  let streamed = Polybasis.Design.Provider.streamed basis pts in
  let dense =
    Polybasis.Design.Provider.dense
      (Polybasis.Design.matrix_rows
         ~pool:(Parallel.Pool.create ~domains:1 ())
         basis pts)
  in
  let res = Randkit.Gaussian.vector rng k in
  let sweep src pool =
    for _ = 1 to reps do
      ignore (Rsm.Corr_sweep.gram_tr ~pool src res)
    done
  in
  [
    { name = "sweep_dense"; run = sweep dense };
    { name = "sweep_streamed"; run = sweep streamed };
  ]

(* Paper-scale matrix-free OMP: M ≈ 10⁵ columns (quick: 10⁴) that are
   never materialized. Runs before everything else so the VmHWM reading
   reflects this scenario's footprint. *)
type bigm_report = {
  bm : int;
  bk : int;
  blambda : int;
  fit_s : float;
  rss_mb : float;
  bnnz : int;
}

let bigm ~quick ~pool =
  let n = if quick then 140 else 446 in
  let k = if quick then 150 else 500 in
  let lambda = if quick then 8 else 15 in
  let basis = Polybasis.Basis.quadratic n in
  let m = Polybasis.Basis.size basis in
  let rng = Randkit.Prng.create 41 in
  let pts = Array.init k (fun _ -> Randkit.Gaussian.vector rng n) in
  let src = Polybasis.Design.Provider.streamed basis pts in
  (* Sparse synthetic response: a handful of true columns plus noise. *)
  let p_true = min 10 lambda in
  let support = Randkit.Sampling.subsample rng (Array.init m Fun.id) p_true in
  let f = Array.init k (fun _ -> 0.05 *. Randkit.Gaussian.sample rng) in
  Array.iter
    (fun j ->
      let col = Polybasis.Design.Provider.column src j in
      for i = 0 to k - 1 do
        f.(i) <- f.(i) +. col.(i)
      done)
    support;
  let t0 = Unix.gettimeofday () in
  let model = Rsm.Omp.fit_p ~pool src f ~lambda in
  let fit_s = Unix.gettimeofday () -. t0 in
  let rss_mb = Bench_util.peak_rss_mb () in
  Printf.printf
    "bigm (matrix-free OMP): K=%d M=%d lambda=%d  fit %.2f s  nnz %d  peak \
     RSS %.0f MB\n\
     %!"
    k m lambda fit_s (Rsm.Model.nnz model) rss_mb;
  { bm = m; bk = k; blambda = lambda; fit_s; rss_mb; bnnz = Rsm.Model.nnz model }

let out_dir = Filename.concat "bench" "out"

let ensure_out_dir () =
  (try Unix.mkdir "bench" 0o755 with Unix.Unix_error _ -> ());
  try Unix.mkdir out_dir 0o755 with Unix.Unix_error _ -> ()

let speedup ~quick ~domains () =
  let domains =
    match domains with Some d -> d | None -> Parallel.Pool.default_domains ()
  in
  let reps = if quick then 2 else 3 in
  Printf.printf "\n=== Matrix-free big-M scenario ===\n%!" ;
  let seq_pool = Parallel.Pool.create ~domains:1 () in
  let par_pool = Parallel.Pool.create ~domains () in
  (* First, before any dense matrices are built, so VmHWM is this
     scenario's peak. *)
  let big = bigm ~quick ~pool:par_pool in
  let kernels = sram_kernels ~quick @ sweep_kernels ~quick in
  Printf.printf "\n=== Sequential vs parallel (%d domain%s) ===\n%!" domains
    (if domains = 1 then "" else "s");
  let rows =
    List.map
      (fun kernel ->
        (* Warm both arms once so allocation effects are shared. *)
        kernel.run seq_pool;
        kernel.run par_pool;
        let seq_s = best_of ~reps (fun () -> kernel.run seq_pool) in
        let par_s = best_of ~reps (fun () -> kernel.run par_pool) in
        let sp = seq_s /. par_s in
        Printf.printf "%-18s seq %8.1f ms   par %8.1f ms   speedup %5.2fx\n%!"
          kernel.name (1e3 *. seq_s) (1e3 *. par_s) sp;
        (kernel.name, seq_s, par_s, sp))
      kernels
  in
  Parallel.Pool.shutdown seq_pool;
  Parallel.Pool.shutdown par_pool;
  let json =
    let b = Buffer.create 512 in
    Buffer.add_string b "{\n";
    Buffer.add_string b (Printf.sprintf "  \"domains\": %d,\n" domains);
    Buffer.add_string b
      (Printf.sprintf
         "  \"bigm\": {\"m\": %d, \"k\": %d, \"lambda\": %d, \"fit_s\": %.3f, \
          \"peak_rss_mb\": %.1f, \"nnz\": %d},\n"
         big.bm big.bk big.blambda big.fit_s big.rss_mb big.bnnz);
    Buffer.add_string b "  \"kernels\": [\n";
    List.iteri
      (fun i (name, seq_s, par_s, sp) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"name\": %S, \"seq_s\": %.6f, \"par_s\": %.6f, \
              \"speedup\": %.3f}%s\n"
             name seq_s par_s sp
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string b "  ]\n}\n";
    Buffer.contents b
  in
  print_string json;
  ensure_out_dir ();
  let report = Filename.concat out_dir "speed_report.json" in
  let oc = open_out report in
  output_string oc json;
  close_out oc;
  Printf.printf "JSON report written to %s\n%!" report

let run ?(quick = false) ?domains () =
  speedup ~quick ~domains ();
  if not quick then bechamel ()
