(* Fused multi-output fitting scenario: one column-generation pass for
   every performance metric.

   A 4-output op-amp LAR+CV fit (gain, bandwidth, power, offset) run
   twice — through the fused (fold × output) grid and through R
   independent per-output fits — with embedded bitwise parity gates at
   1/2/4 domains, dense and streamed (exit 1 on violation), and the
   measured wall-clock plus the analytic column-generation reduction
   written to BENCH_speed.json under "multi". *)

module P = Polybasis.Design.Provider
module Sim = Circuit.Simulator

let median_of ~reps f =
  let ts =
    Array.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  Array.sort compare ts;
  ts.(reps / 2)

let result_bits (r : Rsm.Select.result) =
  ( r.Rsm.Select.lambda,
    Array.copy r.Rsm.Select.curve,
    r.Rsm.Select.model.Rsm.Model.support,
    Array.copy r.Rsm.Select.model.Rsm.Model.coeffs )

let run ?(quick = false) ?domains () =
  let domains =
    match domains with Some d -> d | None -> Parallel.Pool.default_domains ()
  in
  let n_par = if quick then 20 else 120 in
  let k = if quick then 120 else 400 in
  let max_lambda = if quick then 8 else 16 in
  let folds = 4 in
  let reps = if quick then 1 else 3 in
  let amp = Circuit.Opamp.build ~n_parasitics:n_par () in
  let metrics = Array.of_list Circuit.Opamp.all_metrics in
  let sims = Array.map (Circuit.Opamp.simulator amp) metrics in
  let outputs = Array.length sims in
  let dim = Circuit.Opamp.dim amp in
  let basis = Polybasis.Basis.constant_linear dim in
  let m = Polybasis.Basis.size basis in
  let rng = Randkit.Prng.create Bench_util.default_seed in
  (* One shared Monte-Carlo batch — the R datasets share their points by
     construction, exactly what the fused fit exploits. *)
  let datasets, _report = Sim.run_robust_multi sims rng ~k in
  let pts = datasets.(0).Sim.points in
  let fs = Array.map (fun d -> d.Sim.values) datasets in
  let src_streamed = P.streamed basis pts in
  let src_dense =
    Parallel.Pool.with_pool ~domains:1 (fun pool ->
        P.dense (Polybasis.Design.matrix_rows ~pool basis pts))
  in
  let failures = ref 0 in
  let check name ok =
    if not ok then begin
      incr failures;
      Printf.printf "PARITY FAILURE: %s\n%!" name
    end
  in
  Printf.printf
    "\n=== Multi-output fused fitting: R=%d K=%d M=%d Q=%d max_lambda=%d \
     ===\n%!"
    outputs (Array.length pts) m folds max_lambda;
  let fused_fit pool src =
    Rsm.Select.lars_multi_p ~folds ~pool
      (Randkit.Prng.create Bench_util.default_seed)
      ~max_lambda src fs
  in
  let per_output_fit pool src =
    (* The strongest single-output driver per response: fused-CV where
       it applies, the plain fold loop otherwise — the mode a user gets
       today by fitting each metric separately. *)
    Array.map
      (fun f ->
        Rsm.Select.lars_p ~folds ~pool
          (Randkit.Prng.create Bench_util.default_seed)
          ~max_lambda src f)
      fs
  in
  (* Parity gates: fused grid bitwise equal to independent per-output
     fits, dense and streamed, at 1/2/4 domains. *)
  List.iter
    (fun (name, src) ->
      List.iter
        (fun d ->
          Parallel.Pool.with_pool ~domains:d (fun pool ->
              let a = Array.map result_bits (fused_fit pool src) in
              let b = Array.map result_bits (per_output_fit pool src) in
              check
                (Printf.sprintf "fused == per-output (%s, %d domains)" name d)
                (a = b)))
        [ 1; 2; 4 ])
    [ ("dense", src_dense); ("streamed", src_streamed) ];
  (* Timed arms: the streamed provider at the requested domain count —
     the regime where column generation dominates and the fused grid
     pays it once for all R×Q solvers. *)
  let fused_s, per_s =
    Parallel.Pool.with_pool ~domains (fun pool ->
        ignore (fused_fit pool src_streamed);
        ignore (per_output_fit pool src_streamed);
        ( median_of ~reps (fun () -> ignore (fused_fit pool src_streamed)),
          median_of ~reps (fun () -> ignore (per_output_fit pool src_streamed))
        ))
  in
  (* Column-generation work per greedy lockstep round: the fused grid
     streams each column once over the K union rows and serves all
     R×Q fold solvers; R per-output fused-CV fits stream it once per
     output. *)
  let gen_rows_fused = Array.length pts in
  let gen_rows_per_output = outputs * gen_rows_fused in
  let gen_work_ratio =
    float_of_int gen_rows_per_output /. float_of_int gen_rows_fused
  in
  Printf.printf
    "domains=%d  per-output %8.2f ms  fused %8.2f ms  (%.2fx)\n\
     column generation: per-output %d rows/column per round, fused %d \
     (%.1fx less generation work)\n%!"
    domains (1e3 *. per_s) (1e3 *. fused_s) (per_s /. fused_s)
    gen_rows_per_output gen_rows_fused gen_work_ratio;
  (* Per-round sweep kernel at paper-scale M (streamed quadratic
     dictionary): one fused pass serving all R×Q (output, fold)
     residuals against the R passes per-output fused-CV pays per
     lockstep round — the regime where streamed column generation
     dominates and the grid's saving is the measured wall-clock. *)
  let sn = if quick then 60 else 316 in
  let sk = if quick then 120 else 500 in
  let sreps = if quick then 3 else 5 in
  let sbasis = Polybasis.Basis.quadratic sn in
  let sm = Polybasis.Basis.size sbasis in
  let srng = Randkit.Prng.create 47 in
  let spts = Array.init sk (fun _ -> Randkit.Gaussian.vector srng sn) in
  let ssrc = P.streamed sbasis spts in
  let assignment =
    Randkit.Sampling.fold_assignment (Randkit.Prng.create 53) ~n:sk ~folds
  in
  let fold_rows =
    Array.init folds (fun q -> fst (Randkit.Sampling.fold_split assignment q))
  in
  let res_per_output =
    Array.init outputs (fun _ ->
        let full = Randkit.Gaussian.vector srng sk in
        Array.map
          (fun rows -> Array.map (fun i -> full.(i)) rows)
          fold_rows)
  in
  let rows_rq =
    Array.init (outputs * folds) (fun i -> fold_rows.(i mod folds))
  in
  let res_rq = Array.concat (Array.to_list res_per_output) in
  let round_per_s, round_fused_s =
    Parallel.Pool.with_pool ~domains (fun pool ->
        let per_round () =
          Array.map
            (fun rs -> Rsm.Corr_sweep.gram_tr_multi ~pool ssrc ~rows:fold_rows rs)
            res_per_output
        in
        let fused_round () =
          Rsm.Corr_sweep.gram_tr_multi ~pool ssrc ~rows:rows_rq res_rq
        in
        check "fused R×Q round bitwise vs R per-output rounds"
          (Array.concat (Array.to_list (per_round ())) = fused_round ());
        ignore (per_round ());
        ignore (fused_round ());
        ( median_of ~reps:sreps (fun () -> ignore (per_round ())),
          median_of ~reps:sreps (fun () -> ignore (fused_round ())) ))
  in
  Printf.printf
    "per-round sweep (K=%d M=%d streamed): per-output %8.2f ms  fused \
     %8.2f ms  (%.2fx)\n%!"
    sk sm (1e3 *. round_per_s) (1e3 *. round_fused_s)
    (round_per_s /. round_fused_s);
  let rss_mb = Bench_util.peak_rss_mb () in
  let payload =
    Printf.sprintf
      "{\"outputs\": %d, \"m\": %d, \"k\": %d, \"q\": %d, \"max_lambda\": \
       %d, \"domains\": %d, \"per_output_fit_s\": %.6f, \"fused_fit_s\": \
       %.6f, \"fit_speedup\": %.2f, \"gen_rows_per_output\": %d, \
       \"gen_rows_fused\": %d, \"gen_work_ratio\": %.2f, \"round_sweep\": \
       {\"m\": %d, \"k\": %d, \"per_output_s\": %.6f, \"fused_s\": %.6f, \
       \"speedup\": %.2f}, \"peak_rss_mb\": %.1f}"
      outputs m (Array.length pts) folds max_lambda domains per_s fused_s
      (per_s /. fused_s) gen_rows_per_output gen_rows_fused gen_work_ratio sm
      sk round_per_s round_fused_s
      (round_per_s /. round_fused_s)
      rss_mb
  in
  Bench_util.update_summary ~scenario:"multi" ~payload;
  Printf.printf "summary updated in %s\n%!" Bench_util.summary_file;
  if !failures > 0 then begin
    Printf.printf "multi scenario: %d parity failure(s)\n%!" !failures;
    exit 1
  end
