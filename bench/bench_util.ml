(* Shared plumbing for the benchmark harness: experiment construction,
   design-matrix building, method dispatch with cost accounting, and
   plain-text table rendering. *)

open Linalg

let default_seed = 20090726 (* DAC 2009 conference date *)

(* --- text tables --- *)

let hrule widths =
  let parts = List.map (fun w -> String.make (w + 2) '-') widths in
  "+" ^ String.concat "+" parts ^ "+"

let render_row widths cells =
  let padded =
    List.map2
      (fun w c ->
        let pad = max 0 (w - String.length c) in
        " " ^ c ^ String.make pad ' ' ^ " ")
      widths cells
  in
  "|" ^ String.concat "|" padded ^ "|"

let print_table ~title ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let widths =
    List.init ncols (fun j ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row j))) 0 all)
  in
  Printf.printf "\n== %s ==\n" title;
  print_endline (hrule widths);
  print_endline (render_row widths header);
  print_endline (hrule widths);
  List.iter (fun row -> print_endline (render_row widths row)) rows;
  print_endline (hrule widths)

let pct x = Printf.sprintf "%.2f%%" (100. *. x)

(* Process peak resident set (VmHWM) in MB, or -1 where /proc is
   unavailable. A lifetime high-water mark: read it right after the
   scenario whose footprint is being measured. *)
let peak_rss_mb () =
  match open_in "/proc/self/status" with
  | exception _ -> -1.
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> -1.
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
              let rest = String.sub line 6 (String.length line - 6) in
              let fields =
                String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) rest)
                |> List.filter (fun s -> s <> "")
              in
              match fields with
              | kb :: _ -> (
                  match float_of_string_opt kb with
                  | Some v -> v /. 1024.
                  | None -> -1.)
              | [] -> -1.
            end
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in ic) scan

let secs x =
  if x >= 3600. then Printf.sprintf "%.1f h" (x /. 3600.)
  else if x >= 60. then Printf.sprintf "%.1f min" (x /. 60.)
  else Printf.sprintf "%.1f s" x

(* --- canonical speed summary --------------------------------------- *)

(* BENCH_speed.json (repo root, tracked in git) records one scenario per
   line: `  "name": <single-line JSON object>`. Scenarios merge
   textually — a bench run replaces its own line and leaves the others —
   so no JSON parser is needed. *)
let summary_file = "BENCH_speed.json"

(* The scenarios currently in the bench suite, in file order. A merge
   drops any other key, so a renamed or retired scenario does not leave
   a stale entry behind forever. *)
let known_scenarios =
  [ "sweep"; "multi"; "speed"; "eval"; "bigm_sharded"; "robustness" ]

let update_summary ~scenario ~payload =
  if String.contains payload '\n' then
    invalid_arg "Bench_util.update_summary: payload must be a single line";
  let lines =
    match open_in summary_file with
    | exception _ -> []
    | ic ->
        let rec collect acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line -> collect (line :: acc)
        in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> collect [])
  in
  let entries =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if String.length line < 4 || line.[0] <> '"' then None
        else
          match String.index_from_opt line 1 '"' with
          | None -> None
          | Some close -> (
              let name = String.sub line 1 (close - 1) in
              let rest =
                String.sub line (close + 1) (String.length line - close - 1)
              in
              match String.index_opt rest ':' with
              | None -> None
              | Some c ->
                  let v =
                    String.trim
                      (String.sub rest (c + 1) (String.length rest - c - 1))
                  in
                  let v =
                    if String.length v > 0 && v.[String.length v - 1] = ','
                    then String.sub v 0 (String.length v - 1)
                    else v
                  in
                  if name = "" || v = "" then None else Some (name, v)))
      lines
  in
  let entries =
    List.filter (fun (n, _) -> List.mem n known_scenarios) entries
  in
  let entries =
    if List.mem_assoc scenario entries then
      List.map
        (fun (n, v) -> if n = scenario then (n, payload) else (n, v))
        entries
    else entries @ [ (scenario, payload) ]
  in
  let oc = open_out summary_file in
  output_string oc "{\n";
  List.iteri
    (fun i (n, v) ->
      output_string oc
        (Printf.sprintf "  %S: %s%s\n" n v
           (if i = List.length entries - 1 then "" else ",")))
    entries;
  output_string oc "}\n";
  close_out oc

(* --- experiment plumbing --- *)

type prepared = {
  g_train : Mat.t;
  f_train : float array;
  g_test : Mat.t;
  f_test : float array;
  sim_cost : float;  (** accounted Spectre seconds for the training set *)
}

let prepare basis sim rng ~train ~test =
  let e = Circuit.Testbench.generate sim rng ~train ~test in
  {
    g_train = Polybasis.Design.matrix_rows basis e.Circuit.Testbench.train.Circuit.Simulator.points;
    f_train = e.Circuit.Testbench.train.Circuit.Simulator.values;
    g_test = Polybasis.Design.matrix_rows basis e.Circuit.Testbench.test.Circuit.Simulator.points;
    f_test = e.Circuit.Testbench.test.Circuit.Simulator.values;
    sim_cost = Circuit.Testbench.training_cost e;
  }

(* Prepared data reusing raw sample points for a second basis (used by the
   quadratic experiments, which share the simulation budget). *)
let prepare_two bases sim rng ~train ~test =
  let e = Circuit.Testbench.generate sim rng ~train ~test in
  List.map
    (fun basis ->
      {
        g_train =
          Polybasis.Design.matrix_rows basis
            e.Circuit.Testbench.train.Circuit.Simulator.points;
        f_train = e.Circuit.Testbench.train.Circuit.Simulator.values;
        g_test =
          Polybasis.Design.matrix_rows basis
            e.Circuit.Testbench.test.Circuit.Simulator.points;
        f_test = e.Circuit.Testbench.test.Circuit.Simulator.values;
        sim_cost = Circuit.Testbench.training_cost e;
      })
    bases

type outcome = {
  method_ : Rsm.Solver.method_;
  error : float;
  nnz : int;
  fit_seconds : float;
  sim_seconds : float;
}

(* Fit one method with cross-validated sparsity (the paper's flow) and
   measure wall-clock fitting cost, which includes the CV runs. *)
let run_method ?(train_sub = None) ?(max_lambda = 100) prep method_ =
  let g_train, f_train, sim_seconds =
    match train_sub with
    | None -> (prep.g_train, prep.f_train, prep.sim_cost)
    | Some k ->
        let idx = Array.init k (fun i -> i) in
        ( Mat.select_rows prep.g_train idx,
          Array.sub prep.f_train 0 k,
          prep.sim_cost *. float_of_int k /. float_of_int (Mat.rows prep.g_train) )
  in
  let rng = Randkit.Prng.create default_seed in
  let (model, fit_seconds) =
    Circuit.Testbench.timed (fun () ->
        if Rsm.Solver.needs_overdetermined method_ then
          Rsm.Ls.fit ~method_:Lstsq.Normal g_train f_train
        else Rsm.Solver.fit_cv ~max_lambda rng g_train f_train method_)
  in
  {
    method_;
    error = Rsm.Model.error_on model prep.g_test prep.f_test;
    nnz = Rsm.Model.nnz model;
    fit_seconds;
    sim_seconds;
  }

let cost_rows outcomes =
  List.map
    (fun o ->
      [
        Rsm.Solver.name o.method_;
        pct o.error;
        string_of_int o.nnz;
        secs o.sim_seconds;
        secs o.fit_seconds;
        secs (o.sim_seconds +. o.fit_seconds);
      ])
    outcomes

let cost_header =
  [ "method"; "test error"; "bases used"; "sim cost"; "fit cost"; "total" ]

let speedup_line outcomes =
  match
    ( List.find_opt (fun o -> o.method_ = Rsm.Solver.Ls) outcomes,
      List.find_opt (fun o -> o.method_ = Rsm.Solver.Omp) outcomes )
  with
  | Some ls, Some omp ->
      let s =
        (ls.sim_seconds +. ls.fit_seconds) /. (omp.sim_seconds +. omp.fit_seconds)
      in
      Printf.printf "OMP speedup over LS (total cost): %.1fx\n" s
  | _ -> ()
