(* Robustness scenario: the fault-tolerant pipeline under fire.

   Three claims are checked, PASS/FAIL per line:

   1. With 10% injected simulator faults (NaN returns, gross outliers,
      transient crashes), OMP and LAR still complete through the
      [Robust.Pipeline] and land within 2x of the clean-run testing
      error on the same seed.
   2. A checkpointed OMP, STAR or LAR fit killed mid-path and resumed
      from the last checkpoint produces a bitwise-identical model
      ([Rsm.Serialize.to_string] equality) to an uninterrupted run; a
      4-fold LAR CV sweep killed after two folds resumes from its
      per-fold checkpoint files to the same selection, bit for bit.
   3. Overheads are measured and printed (screening cost, injection +
      retry cost, LAR event-log checkpoint write and replay cost) so
      PERFORMANCE.md numbers stay reproducible.
   4. Under a correlated outage (a ~20-sample burst window where every
      attempt fails), the quorum-degraded pipeline still lands within
      2x of the clean testing error, and the adaptive breaker policy
      ([Robust.Retry]) spends measurably less accounted farm time than
      fixed retry — with the breaker recovery latency printed so
      PERFORMANCE.md stays reproducible. The burst numbers are merged
      into BENCH_speed.json under the "robustness" key. *)

open Bench_util
module Simulator = Circuit.Simulator
module Retry = Robust.Retry

let offset_sim ~quick =
  let amp = Circuit.Opamp.build ~n_parasitics:(if quick then 60 else 200) () in
  (Circuit.Opamp.simulator amp Circuit.Opamp.Offset, Circuit.Opamp.dim amp)

(* Outliers far outside any plausible bulk (offset >= 500 against a
   response spread of ~12), so the MAD screen must catch every one —
   borderline outliers inside the screen band are a statistics question,
   not a robustness one. *)
let bench_faults =
  Simulator.fault_plan ~rate:0.10 ~outlier_scale:500. ()

let pipeline_error ?(quorum = Robust.Pipeline.default_quorum) ?adaptive ~faults
    ~method_ ~samples ~test ~max_lambda sim basis =
  let cfg =
    match
      Robust.Pipeline.config ~method_ ~max_lambda ~samples ~faults
        ~retry:(Simulator.retry_policy ())
        ?adaptive ~quorum
        ~min_samples:(samples / 2) ()
    with
    | Ok cfg -> cfg
    | Error e -> failwith (Robust.Error.to_string e)
  in
  let rng = Randkit.Prng.create default_seed in
  match Robust.Pipeline.fit cfg sim basis rng with
  | Error e -> Error (Robust.Error.to_string e)
  | Ok o ->
      (* Fresh clean test set, decoupled from the training stream. *)
      let test_rng = Randkit.Prng.create (default_seed + 1) in
      let td = Simulator.run sim test_rng ~k:test in
      let src_te =
        Polybasis.Design.Provider.dense
          (Polybasis.Design.matrix_rows basis td.Simulator.points)
      in
      Ok (Rsm.Model.error_on_p o.Robust.Pipeline.model src_te td.Simulator.values, o)

let check failures name ok detail =
  Printf.printf "  [%s] %s%s\n"
    (if ok then "PASS" else "FAIL")
    name
    (if detail = "" then "" else " — " ^ detail);
  if not ok then failures := name :: !failures

(* Claim 2: kill the fit at [kill_at] selections (keeping the last
   checkpoint), resume, and compare the final model byte-for-byte with
   an uninterrupted run. *)
let checkpoint_roundtrip_omp src f ~lambda ~kill_at =
  let full = Rsm.Omp.fit_p src f ~lambda in
  let last = ref None in
  let _interrupted : Rsm.Omp.step array =
    Rsm.Omp.path_p ~checkpoint_every:5 ~on_checkpoint:(fun c -> last := Some c)
      src f ~max_lambda:kill_at
  in
  match !last with
  | None -> false
  | Some ckpt ->
      let resumed = Rsm.Omp.fit_p ?resume:(Some ckpt) src f ~lambda in
      Rsm.Serialize.to_string resumed = Rsm.Serialize.to_string full

let checkpoint_roundtrip_star src f ~lambda ~kill_at =
  let full = Rsm.Star.fit_p src f ~lambda in
  let last = ref None in
  let _interrupted : Rsm.Star.step array =
    Rsm.Star.path_p ~checkpoint_every:5 ~on_checkpoint:(fun c -> last := Some c)
      src f ~max_lambda:kill_at
  in
  match !last with
  | None -> false
  | Some ckpt ->
      let resumed = Rsm.Star.fit_p ?resume:(Some ckpt) src f ~lambda in
      Rsm.Serialize.to_string resumed = Rsm.Serialize.to_string full

(* LAR walks an equiangular path, so its checkpoint is an event log
   replayed against the provider rather than a support list. *)
let checkpoint_roundtrip_lar src f ~lambda ~kill_at =
  let full = Rsm.Lars.fit_p ~on_singular:`Fallback src f ~lambda in
  let last = ref None in
  let _interrupted : Rsm.Lars.step array =
    Rsm.Lars.path_p ~on_singular:`Fallback ~checkpoint_every:5
      ~on_checkpoint:(fun c -> last := Some c)
      src f ~max_steps:kill_at
  in
  match !last with
  | None -> false
  | Some ckpt ->
      let resumed =
        Rsm.Lars.fit_p ~on_singular:`Fallback ?resume:(Some ckpt) src f ~lambda
      in
      Rsm.Serialize.to_string resumed = Rsm.Serialize.to_string full

(* A 4-fold CV sweep killed after two folds: the surviving per-fold
   checkpoint files must carry the resumed sweep to the same bits. *)
let cv_resume_roundtrip src f ~max_lambda =
  let run ?checkpoint ?resume () =
    Rsm.Select.lars_p ?checkpoint ?resume ~on_singular:`Fallback
      (Randkit.Prng.create default_seed)
      ~max_lambda src f
  in
  let fingerprint (r : Rsm.Select.result) =
    ( r.Rsm.Select.lambda,
      Array.copy r.Rsm.Select.curve,
      Rsm.Serialize.to_string r.Rsm.Select.model )
  in
  let full = fingerprint (run ()) in
  let dir = Filename.temp_file "rsm-bench-cv" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun fn -> Sys.remove (Filename.concat dir fn))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let base = Filename.concat dir "cv" in
      ignore (run ~checkpoint:base ());
      Sys.remove (Rsm.Serialize.Checkpoint.Cv.fold_file base 2);
      Sys.remove (Rsm.Serialize.Checkpoint.Cv.fold_file base 3);
      fingerprint (run ~checkpoint:base ~resume:true ()) = full)

let run ~quick () =
  let samples = if quick then 200 else 500 in
  let test = if quick then 400 else 1000 in
  let max_lambda = if quick then 12 else 25 in
  let sim, dim = offset_sim ~quick in
  let basis = Polybasis.Basis.constant_linear dim in
  Printf.printf
    "\n=== Robustness: 10%% fault injection, screening, checkpoint/resume ===\n";
  Printf.printf
    "OpAmp offset, %d factors, K = %d training / %d testing samples\n" dim
    samples test;
  let failures = ref [] in

  (* --- Claim 1: fit quality under faults, OMP and LAR. --- *)
  List.iter
    (fun method_ ->
      let name = Rsm.Solver.name method_ in
      match
        pipeline_error ~faults:Simulator.no_faults ~method_ ~samples ~test
          ~max_lambda sim basis
      with
      | Error e -> check failures (name ^ " clean fit") false e
      | Ok (clean_err, _) -> (
          match
            pipeline_error ~faults:bench_faults ~method_ ~samples ~test
              ~max_lambda sim basis
          with
          | Error e -> check failures (name ^ " faulty fit") false e
          | Ok (fault_err, o) ->
              let r = o.Robust.Pipeline.run_report in
              let hygiene =
                match o.Robust.Pipeline.screen_report with
                | Some s -> Robust.Screen.report_summary s
                | None -> "screen: off"
              in
              Printf.printf "  %-5s clean %.2f%%  faulty %.2f%%  (%d faults, \
                             %d retries; %s)\n"
                name (100. *. clean_err) (100. *. fault_err)
                r.Simulator.faults_injected r.Simulator.retries hygiene;
              check failures
                (name ^ " within 2x of clean error under 10% faults")
                (Float.is_finite fault_err
                && fault_err <= (2. *. clean_err) +. 1e-12)
                (Printf.sprintf "%.2f%% vs %.2f%%" (100. *. fault_err)
                   (100. *. clean_err))))
    [ Rsm.Solver.Omp; Rsm.Solver.Lar ];

  (* --- Claim 2: bitwise checkpoint/resume. --- *)
  let rng = Randkit.Prng.create default_seed in
  let data = Simulator.run sim rng ~k:samples in
  let src =
    Polybasis.Design.Provider.dense
      (Polybasis.Design.matrix_rows basis data.Simulator.points)
  in
  let f = data.Simulator.values in
  let lambda = min max_lambda (min samples (Polybasis.Basis.size basis)) in
  check failures "OMP killed-at-10-then-resumed fit is bitwise identical"
    (checkpoint_roundtrip_omp src f ~lambda ~kill_at:(min 10 lambda))
    "";
  check failures "STAR killed-at-10-then-resumed fit is bitwise identical"
    (checkpoint_roundtrip_star src f ~lambda ~kill_at:(min 10 lambda))
    "";
  check failures "LAR killed-at-10-then-resumed fit is bitwise identical"
    (checkpoint_roundtrip_lar src f ~lambda ~kill_at:(min 10 lambda))
    "";
  check failures "LAR 4-fold CV killed-after-2-folds resumes bitwise"
    (cv_resume_roundtrip src f ~max_lambda:(min 8 lambda))
    "";

  (* --- Claim 3: measured overheads. --- *)
  let reps = if quick then 10 else 20 in
  let timed_mean f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let t_clean =
    timed_mean (fun () ->
        let rng = Randkit.Prng.create default_seed in
        ignore (Simulator.run sim rng ~k:samples))
  in
  let t_robust =
    timed_mean (fun () ->
        let rng = Randkit.Prng.create default_seed in
        ignore
          (Simulator.run_robust ~faults:bench_faults
             ~retry:(Simulator.retry_policy ()) sim rng ~k:samples))
  in
  let t_screen = timed_mean (fun () -> ignore (Robust.Screen.screen data)) in
  Printf.printf
    "  overhead: clean sampling %.2f ms, 10%%-fault sampling+retry %.2f ms \
     (%+.0f%%), MAD screen of %d rows %.3f ms (means of %d runs)\n"
    (1e3 *. t_clean) (1e3 *. t_robust)
    (100. *. ((t_robust /. Float.max t_clean 1e-9) -. 1.))
    samples (1e3 *. t_screen) reps;
  (* LARS event-log checkpointing: per-step capture + atomic file write
     on the walk, and full-log replay against the provider on resume. *)
  let ckpt_file = Filename.temp_file "rsm-bench-lar" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists ckpt_file then Sys.remove ckpt_file)
    (fun () ->
      let t_lar_plain =
        timed_mean (fun () ->
            ignore
              (Rsm.Lars.path_p ~on_singular:`Fallback src f ~max_steps:lambda))
      in
      let t_lar_ckpt =
        timed_mean (fun () ->
            ignore
              (Rsm.Lars.path_p ~on_singular:`Fallback ~checkpoint_every:1
                 ~on_checkpoint:(Rsm.Serialize.Checkpoint.Lars.save ckpt_file)
                 src f ~max_steps:lambda))
      in
      let terminal =
        match Rsm.Serialize.Checkpoint.Lars.load ckpt_file with
        | Ok c -> c
        | Error e -> failwith e
      in
      let t_lar_replay =
        timed_mean (fun () ->
            ignore
              (Rsm.Lars.path_p ~on_singular:`Fallback ~resume:terminal src f
                 ~max_steps:lambda))
      in
      Printf.printf
        "  checkpoint: LAR %d-step path %.2f ms plain, %.2f ms with \
         every-step file checkpoints (%+.0f%%), %.2f ms full-log replay on \
         resume (means of %d runs)\n"
        lambda (1e3 *. t_lar_plain) (1e3 *. t_lar_ckpt)
        (100. *. ((t_lar_ckpt /. Float.max t_lar_plain 1e-9) -. 1.))
        (1e3 *. t_lar_replay) reps);

  (* --- Claim 4: correlated burst outages, quorum, adaptive breaker. --- *)
  (* A burst model sized so a handful of ~20-sample outage windows fall
     inside the run: every attempt inside a window fails (rate 1), so
     fixed retry burns its full allowance per burst sample while the
     breaker fails fast through the window. *)
  let burst =
    Simulator.burst_model ~entry:(2.5 /. float_of_int samples) ~len:20. ()
  in
  let burst_faults = Simulator.fault_plan ~rate:0.02 ~burst () in
  (match
     pipeline_error ~faults:Simulator.no_faults ~method_:Rsm.Solver.Omp
       ~samples ~test ~max_lambda sim basis
   with
  | Error e -> check failures "OMP clean fit (burst baseline)" false e
  | Ok (clean_err, _) -> (
      match
        pipeline_error ~quorum:0.7 ~faults:burst_faults ~method_:Rsm.Solver.Omp
          ~samples ~test ~max_lambda sim basis
      with
      | Error e -> check failures "OMP burst fit" false e
      | Ok (burst_err, o) ->
          let r = o.Robust.Pipeline.run_report in
          let degraded =
            Array.exists
              (fun n ->
                String.length n >= 9 && String.sub n 0 9 = "degraded:")
              (Rsm.Model.notes o.Robust.Pipeline.model)
          in
          Printf.printf
            "  burst: %d window(s) over %d sample(s), %d delivered of %d \
             requested%s\n"
            r.Simulator.burst_windows r.Simulator.burst_samples
            r.Simulator.delivered samples
            (if degraded then " (fit degraded, noted on the model)" else "");
          check failures "burst run really hit an outage window"
            (r.Simulator.burst_windows > 0)
            (Printf.sprintf "%d windows" r.Simulator.burst_windows);
          check failures
            "OMP within 2x of clean error under a 20-sample burst outage"
            (Float.is_finite burst_err
            && burst_err <= (2. *. clean_err) +. 1e-12)
            (Printf.sprintf "%.2f%% vs %.2f%%" (100. *. burst_err)
               (100. *. clean_err));
          check failures "sub-full delivery is noted on the model"
            (r.Simulator.delivered >= samples || degraded)
            "";

          (* Adaptive breaker vs fixed retry under a hard outage: same
             plan, same attempt ceiling, compare accounted farm seconds
             (the metric a real flow pays) and local wall-clock. *)
          let storm =
            Simulator.fault_plan ~rate:0.
              ~burst:
                (Simulator.burst_model ~entry:(3. /. float_of_int samples)
                   ~len:25. ())
              ()
          in
          let fixed_retry = Simulator.retry_policy ~max_attempts:4 () in
          let adaptive =
            Retry.policy ~max_attempts:4 ~breaker_threshold:3 ()
          in
          let _, fixed_report =
            Simulator.run_robust ~faults:storm ~retry:fixed_retry sim
              (Randkit.Prng.create default_seed)
              ~k:samples
          in
          let _, adaptive_report =
            Retry.run ~faults:storm adaptive sim
              (Randkit.Prng.create default_seed)
              ~k:samples
          in
          let ar = adaptive_report.Retry.run in
          let t_fixed =
            timed_mean (fun () ->
                ignore
                  (Simulator.run_robust ~faults:storm ~retry:fixed_retry sim
                     (Randkit.Prng.create default_seed)
                     ~k:samples))
          in
          let t_adaptive =
            timed_mean (fun () ->
                ignore
                  (Retry.run ~faults:storm adaptive sim
                     (Randkit.Prng.create default_seed)
                     ~k:samples))
          in
          (* Breaker recovery latency: samples from each trip to the
             breaker closing again (cooldown + the half-open probe). *)
          let recovery =
            let events = adaptive_report.Retry.events in
            let total = ref 0 and n = ref 0 and open_at = ref (-1) in
            Array.iter
              (fun e ->
                match e with
                | Retry.Tripped { sample; _ } ->
                    if !open_at < 0 then open_at := sample
                | Retry.Closed { sample } when !open_at >= 0 ->
                    total := !total + (sample - !open_at);
                    incr n;
                    open_at := -1
                | _ -> ())
              events;
            if !n = 0 then Float.nan
            else float_of_int !total /. float_of_int !n
          in
          Printf.printf
            "  backoff: fixed retry %.0f accounted s, adaptive breaker %.0f \
             accounted s (%.0f%% saved; %d trip(s), mean recovery %.1f \
             samples); wall %.2f ms vs %.2f ms (means of %d runs)\n"
            fixed_report.Simulator.accounted_extra_seconds
            ar.Simulator.accounted_extra_seconds
            (100.
            *. (1.
               -. ar.Simulator.accounted_extra_seconds
                  /. Float.max fixed_report.Simulator.accounted_extra_seconds
                       1e-9))
            ar.Simulator.breaker_trips recovery (1e3 *. t_fixed)
            (1e3 *. t_adaptive) reps;
          check failures
            "adaptive breaker charges less accounted time than fixed retry"
            (ar.Simulator.accounted_extra_seconds
            < fixed_report.Simulator.accounted_extra_seconds)
            (Printf.sprintf "%.0f s vs %.0f s"
               ar.Simulator.accounted_extra_seconds
               fixed_report.Simulator.accounted_extra_seconds);
          check failures "breaker tripped during the outage"
            (ar.Simulator.breaker_trips > 0)
            "";
          let payload =
            Printf.sprintf
              "{\"samples\": %d, \"clean_err_pct\": %.3f, \"burst_err_pct\": \
               %.3f, \"burst_windows\": %d, \"burst_samples\": %d, \
               \"degraded\": %B, \"fixed_accounted_s\": %.1f, \
               \"adaptive_accounted_s\": %.1f, \"breaker_trips\": %d, \
               \"recovery_latency_samples\": %.1f, \"wall_fixed_ms\": %.2f, \
               \"wall_adaptive_ms\": %.2f}"
              samples (100. *. clean_err) (100. *. burst_err)
              r.Simulator.burst_windows r.Simulator.burst_samples degraded
              fixed_report.Simulator.accounted_extra_seconds
              ar.Simulator.accounted_extra_seconds ar.Simulator.breaker_trips
              recovery (1e3 *. t_fixed) (1e3 *. t_adaptive)
          in
          update_summary ~scenario:"robustness" ~payload;
          Printf.printf "summary updated in %s\n%!" summary_file));

  (match !failures with
  | [] ->
      Printf.printf "robustness: all checks passed\n";
      true
  | fs ->
      Printf.printf "robustness: %d check(s) FAILED\n" (List.length fs);
      false)
