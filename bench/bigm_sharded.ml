(* Column-sharded LAR at M = 10⁶: the tentpole scale test.

   Fits the same streamed quadratic dictionary twice — unsharded, and
   through the column-sharded engine in process mode — and byte-compares
   the paths: entering/leaving columns, the C correlations and every
   coefficient must be bitwise identical at every shard count (exit 1
   on violation, so this doubles as the determinism smoke for CI).

   Process mode is the point at this scale: each re-exec'd worker owns
   only its M/S column slice (Hermite tables + Gram-cache slab), so the
   per-process peak RSS stays bounded while the single-image fit carries
   the whole dictionary. The per-shard VmHWM of a probed engine is
   recorded next to the fit times in BENCH_speed.json. *)

let quick_cfg = (60, 80, 6, 3)

(* n = 1413 → M = 1 + 2n + n(n−1)/2 = 1,000,405 columns. *)
let full_cfg = (1413, 400, 8, 4)

let fingerprint steps =
  Array.map
    (fun (s : Rsm.Lars.step) ->
      ( s.Rsm.Lars.added,
        s.Rsm.Lars.dropped,
        Int64.bits_of_float s.Rsm.Lars.max_corr,
        s.Rsm.Lars.model.Rsm.Model.support,
        Array.map Int64.bits_of_float s.Rsm.Lars.model.Rsm.Model.coeffs ))
    steps

let run ?(quick = false) ?domains () =
  let n, k, max_steps, shards = if quick then quick_cfg else full_cfg in
  let domains =
    match domains with Some d -> d | None -> Parallel.Pool.default_domains ()
  in
  let pool = Parallel.Pool.create ~domains () in
  let basis = Polybasis.Basis.quadratic n in
  let m = Polybasis.Basis.size basis in
  let rng = Randkit.Prng.create 61 in
  let pts = Array.init k (fun _ -> Randkit.Gaussian.vector rng n) in
  let src = Polybasis.Design.Provider.streamed basis pts in
  (* Sparse synthetic response: a handful of true columns plus noise. *)
  let p_true = min 6 max_steps in
  let support = Randkit.Sampling.subsample rng (Array.init m Fun.id) p_true in
  let f = Array.init k (fun _ -> 0.05 *. Randkit.Gaussian.sample rng) in
  Array.iter
    (fun j ->
      let col = Polybasis.Design.Provider.column src j in
      for i = 0 to k - 1 do
        f.(i) <- f.(i) +. col.(i)
      done)
    support;
  let sweep = Rsm.Corr_sweep.incremental ~refresh:4 () in
  Printf.printf
    "\n=== Column-sharded LAR: K=%d M=%d steps=%d shards=%d (process mode) \
     ===\n\
     %!"
    k m max_steps shards;
  (* Per-shard footprint probe: a live engine (slabs built, initial
     sweep done, one selection answered) queried for each worker's
     VmHWM. Probed before the fits so the workers' high-water marks
     reflect exactly this engine. *)
  let shard_rss_kb =
    let e =
      Rsm.Shard_sweep.create ~pool ~mode:Rsm.Shard_sweep.Procs ~shards ~sweep
        src ~r0:f
    in
    ignore (Rsm.Shard_sweep.raw_norms e);
    ignore (Rsm.Shard_sweep.select e ~r:f);
    let rss = Rsm.Shard_sweep.peak_rss_kb e in
    Rsm.Shard_sweep.shutdown e;
    rss
  in
  Array.iteri
    (fun s kb ->
      Printf.printf "shard %d/%d: %d columns, peak RSS %.1f MB\n%!" s shards
        (((s + 1) * m / shards) - (s * m / shards))
        (kb /. 1024.))
    shard_rss_kb;
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let seq_steps, seq_s =
    timed (fun () ->
        Rsm.Lars.path_p ~pool ~on_singular:`Fallback ~sweep src f ~max_steps)
  in
  let recovered = ref 0 in
  let sh_steps, sh_s =
    timed (fun () ->
        Rsm.Lars.path_p ~pool ~on_singular:`Fallback ~sweep ~shards
          ~shard_mode:Rsm.Shard_sweep.Procs ~recovered src f ~max_steps)
  in
  let parity = fingerprint seq_steps = fingerprint sh_steps in
  Printf.printf
    "unsharded %8.2f s   %d-shard %8.2f s   parity %s   parent RSS %.0f MB\n%!"
    seq_s shards sh_s
    (if parity then "bitwise" else "VIOLATED")
    (Bench_util.peak_rss_mb ());
  let payload =
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"m\": %d, \"k\": %d, \"steps\": %d, \"shards\": %d, \"mode\": \
          \"process\", \"fit_s_unsharded\": %.3f, \"fit_s_sharded\": %.3f, \
          \"parity\": %B, \"parent_peak_rss_mb\": %.1f, \
          \"shard_peak_rss_mb\": ["
         m k (Array.length sh_steps) shards seq_s sh_s parity
         (Bench_util.peak_rss_mb ()));
    Array.iteri
      (fun i kb ->
        Buffer.add_string b
          (Printf.sprintf "%s%.1f" (if i = 0 then "" else ", ") (kb /. 1024.)))
      shard_rss_kb;
    Buffer.add_string b "]}";
    Buffer.contents b
  in
  Bench_util.update_summary ~scenario:"bigm_sharded" ~payload;
  Printf.printf "summary updated in %s\n%!" Bench_util.summary_file;
  Parallel.Pool.shutdown pool;
  if not parity then begin
    Printf.printf "bigm_sharded: sharded path diverged from unsharded\n%!";
    exit 1
  end
