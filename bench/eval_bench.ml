(* Serving-engine scenario: evals/sec of the naive term-by-term
   evaluator vs the compiled instruction tape (sequential and over the
   domain pool), plus a streamed yield-convergence curve — at the
   paper-scale quadratic dictionary (M ≈ 5·10⁴) unless --quick. Every
   timed arm is guarded by its bitwise-parity contract (compiled ==
   naive; streamed yield identical across domain counts); a violation
   fails the bench with exit 1, so this scenario doubles as the
   serving-parity smoke for CI. *)

let median_of ~reps f =
  let ts =
    Array.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  Array.sort compare ts;
  ts.(reps / 2)

(* A realistic serving model over the quadratic dictionary: the paper's
   fits select a few dozen terms concentrated on a small set of strong
   factors, which is exactly what makes Hermite-table sharing pay. Keep
   every term whose variables all lie in the first [nvars] factors, then
   subsample [nnz] of them. *)
let make_model rng basis ~nvars ~nnz =
  let m = Polybasis.Basis.size basis in
  let local = ref [] in
  for j = m - 1 downto 0 do
    let term = Polybasis.Basis.term basis j in
    if Array.for_all (fun (v, _) -> v < nvars) term then local := j :: !local
  done;
  let local = Array.of_list !local in
  let support = Randkit.Sampling.subsample rng local (min nnz (Array.length local)) in
  Array.sort compare support;
  let coeffs =
    Array.map (fun _ -> 0.2 +. Randkit.Gaussian.sample rng) support
  in
  Rsm.Model.make ~basis_size:m ~support ~coeffs

let run ~quick ~domains () =
  let domains =
    match domains with Some d -> d | None -> Parallel.Pool.default_domains ()
  in
  let n = if quick then 60 else 316 in
  let k = if quick then 20_000 else 100_000 in
  let nnz = 40 and nvars = 12 in
  let reps = if quick then 3 else 5 in
  let basis = Polybasis.Basis.quadratic n in
  let m = Polybasis.Basis.size basis in
  let rng = Randkit.Prng.create 61 in
  let model = make_model rng basis ~nvars ~nnz in
  let tape = Serve.Eval.compile model basis in
  Printf.printf
    "\n=== Serving scenario: M=%d (quadratic n=%d), nnz=%d on %d variables, \
     %d points (%d domain%s) ===\n%!"
    m n (Rsm.Model.nnz model)
    (Serve.Eval.vars_touched tape)
    k domains
    (if domains = 1 then "" else "s");
  let points = Array.init k (fun _ -> Randkit.Gaussian.vector rng n) in
  let pool = Parallel.Pool.create ~domains () in
  let failures = ref 0 in
  let check name ok =
    if not ok then begin
      incr failures;
      Printf.printf "PARITY FAILURE: %s\n%!" name
    end
  in
  (* Parity gates before any timing: all compiled arms must reproduce
     the naive walk bit for bit. *)
  let naive_out = Array.map (Rsm.Model.predict_point model basis) points in
  let seq_out = Serve.Eval.eval_batch tape points in
  let par_out = Serve.Eval.eval_batch ~pool tape points in
  check "compiled (sequential) == naive (bitwise)" (seq_out = naive_out);
  check
    (Printf.sprintf "compiled (%d domains) == naive (bitwise)" domains)
    (par_out = naive_out);
  let scratch = Serve.Eval.make_scratch tape in
  check "compiled scalar == naive (bitwise)"
    (Array.for_all2
       (fun p v -> Serve.Eval.eval_with tape scratch p = v)
       points naive_out);
  (* Timed arms. *)
  let naive_s =
    median_of ~reps (fun () ->
        ignore (Array.map (Rsm.Model.predict_point model basis) points))
  in
  let seq_s =
    median_of ~reps (fun () -> ignore (Serve.Eval.eval_batch tape points))
  in
  let par_s =
    median_of ~reps (fun () -> ignore (Serve.Eval.eval_batch ~pool tape points))
  in
  let rate s = float_of_int k /. s in
  Printf.printf
    "naive                %8.1f ms  %10.3g evals/s\n\
     compiled (1 domain)  %8.1f ms  %10.3g evals/s  (%.1fx naive)\n\
     compiled (%d domains) %7.1f ms  %10.3g evals/s  (%.1fx naive)\n%!"
    (1e3 *. naive_s) (rate naive_s) (1e3 *. seq_s) (rate seq_s)
    (naive_s /. seq_s) domains (1e3 *. par_s) (rate par_s) (naive_s /. par_s);
  (* Streamed yield: convergence curve, with the cross-domain bitwise
     gate on the largest rung. *)
  let spec = Rsm.Yield.spec_both ~lower:(-3.) ~upper:3. in
  let rungs =
    if quick then [ 2_000; 20_000; 200_000 ]
    else [ 10_000; 100_000; 1_000_000; 10_000_000 ]
  in
  let curve =
    List.map
      (fun samples ->
        let e, t =
          let t0 = Unix.gettimeofday () in
          let e =
            Serve.Stream.estimate ~pool ~samples tape
              (Randkit.Prng.create 71) spec
          in
          (e, Unix.gettimeofday () -. t0)
        in
        Printf.printf
          "yield @ %9d samples: %.5f +/- %.5f  (%.3g evals/s streamed)\n%!"
          samples e.Serve.Stream.yield e.Serve.Stream.std_error
          (float_of_int samples /. t);
        (samples, e, t))
      rungs
  in
  (* Cross-domain bitwise gate: a mid-size stream is enough to catch
     any batch/chunk misalignment; the big rungs above are for the
     convergence curve, not the gate. *)
  let top = min (List.nth rungs (List.length rungs - 1)) 200_000 in
  let stream_at d =
    Parallel.Pool.with_pool ~domains:d (fun p ->
        Serve.Stream.estimate ~pool:p ~samples:top tape
          (Randkit.Prng.create 71) spec)
  in
  let e1 = stream_at 1 in
  List.iter
    (fun d ->
      let ed = stream_at d in
      check
        (Printf.sprintf "streamed yield bitwise identical at 1 vs %d domains" d)
        (ed.Serve.Stream.yield = e1.Serve.Stream.yield
        && ed.Serve.Stream.mean = e1.Serve.Stream.mean
        && ed.Serve.Stream.std = e1.Serve.Stream.std
        && ed.Serve.Stream.pass = e1.Serve.Stream.pass))
    [ 2; 4 ];
  (* --- sampling engine: normals/s and support-projected streaming ---
     Input generation is the serving bottleneck: every point above paid
     n polar normals while the tape reads only [vars_touched] of them.
     Time the raw samplers, then the streamed yield with the
     counter-mode ziggurat drawing (a) every coordinate and (b) only
     the touched ones — the latter two must agree bit for bit. *)
  let nnorm = if quick then 500_000 else 5_000_000 in
  let buf = Array.make n 0. in
  let fills = max 1 (nnorm / n) in
  let polar_norm_s =
    median_of ~reps (fun () ->
        let g = Randkit.Prng.create 91 in
        for _ = 1 to fills do
          Randkit.Gaussian.fill g buf
        done)
  in
  let zig_norm_s =
    median_of ~reps (fun () ->
        let g = Randkit.Prng.create 91 in
        for _ = 1 to fills do
          Randkit.Ziggurat.fill g buf
        done)
  in
  let ctr_norm_s =
    median_of ~reps (fun () ->
        let key = Randkit.Counter.create 91 in
        for p = 0 to fills - 1 do
          let pk = Randkit.Counter.at key p in
          for c = 0 to n - 1 do
            buf.(c) <- Randkit.Ziggurat.normal_at pk ~coord:c
          done
        done)
  in
  let nrate s = float_of_int (fills * n) /. s in
  Printf.printf
    "normals/s            polar %10.3g   ziggurat %10.3g   counter-ziggurat \
     %10.3g\n%!"
    (nrate polar_norm_s) (nrate zig_norm_s) (nrate ctr_norm_s);
  let ysamples = if quick then 50_000 else 200_000 in
  let timed_estimate ~sampler ~project =
    let t0 = Unix.gettimeofday () in
    let e =
      Serve.Stream.estimate ~pool ~sampler ~project ~samples:ysamples tape
        (Randkit.Prng.create 71) spec
    in
    (e, Unix.gettimeofday () -. t0)
  in
  let e_polar, t_polar =
    timed_estimate ~sampler:Randkit.Gaussian.Polar ~project:false
  in
  let e_zfull, t_zfull =
    timed_estimate ~sampler:Randkit.Gaussian.Ziggurat ~project:false
  in
  let e_zproj, t_zproj =
    timed_estimate ~sampler:Randkit.Gaussian.Ziggurat ~project:true
  in
  check "projected == full-draw ziggurat estimate (bitwise)"
    (e_zproj = e_zfull);
  check "ziggurat vs polar estimates statistically consistent"
    (abs_float (e_zproj.Serve.Stream.yield -. e_polar.Serve.Stream.yield)
    < 6.
      *. (e_zproj.Serve.Stream.std_error +. e_polar.Serve.Stream.std_error
         +. 1e-9));
  let zig_at d =
    Parallel.Pool.with_pool ~domains:d (fun p ->
        Serve.Stream.estimate ~pool:p ~sampler:Randkit.Gaussian.Ziggurat
          ~samples:ysamples tape (Randkit.Prng.create 71) spec)
  in
  let z1 = zig_at 1 in
  List.iter
    (fun d ->
      check
        (Printf.sprintf
           "projected ziggurat yield bitwise identical at 1 vs %d domains" d)
        (zig_at d = z1))
    [ 2; 4 ];
  let yrate t = float_of_int ysamples /. t in
  Printf.printf
    "streamed yield       polar+full %8.3g evals/s   ziggurat+full %8.3g \
     evals/s   ziggurat+projected %8.3g evals/s (%.1fx polar, %d of %d \
     coords)\n%!"
    (yrate t_polar) (yrate t_zfull) (yrate t_zproj) (t_polar /. t_zproj)
    (Serve.Eval.vars_touched tape)
    n;
  Parallel.Pool.shutdown pool;
  let payload =
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"m\": %d, \"n\": %d, \"nnz\": %d, \"vars_touched\": %d, \
          \"points\": %d, \"domains\": %d, \"naive_evals_s\": %.0f, \
          \"compiled_seq_evals_s\": %.0f, \"compiled_par_evals_s\": %.0f, \
          \"speedup_seq\": %.2f, \"speedup_par\": %.2f, \"yield_curve\": ["
         m n (Rsm.Model.nnz model)
         (Serve.Eval.vars_touched tape)
         k domains (rate naive_s) (rate seq_s) (rate par_s) (naive_s /. seq_s)
         (naive_s /. par_s));
    List.iteri
      (fun i (samples, e, t) ->
        Buffer.add_string b
          (Printf.sprintf
             "%s{\"samples\": %d, \"yield\": %.6f, \"se\": %.6f, \
              \"evals_s\": %.0f}"
             (if i = 0 then "" else ", ")
             samples e.Serve.Stream.yield e.Serve.Stream.std_error
             (float_of_int samples /. t)))
      curve;
    Buffer.add_string b
      (Printf.sprintf
         "], \"sampling\": {\"normals_per_s\": {\"polar\": %.0f, \
          \"ziggurat\": %.0f, \"ziggurat_counter\": %.0f}, \"yield\": \
          {\"samples\": %d, \"polar_full_evals_s\": %.0f, \
          \"ziggurat_full_evals_s\": %.0f, \"ziggurat_projected_evals_s\": \
          %.0f, \"projected_speedup_vs_polar\": %.2f, \"coords_drawn\": %d}}"
         (nrate polar_norm_s) (nrate zig_norm_s) (nrate ctr_norm_s) ysamples
         (yrate t_polar) (yrate t_zfull) (yrate t_zproj) (t_polar /. t_zproj)
         (Serve.Eval.vars_touched tape));
    Buffer.add_string b
      (Printf.sprintf ", \"parity_failures\": %d}" !failures);
    Buffer.contents b
  in
  Bench_util.update_summary ~scenario:"eval" ~payload;
  Printf.printf "summary updated in %s\n%!" Bench_util.summary_file;
  if !failures > 0 then begin
    Printf.printf "eval scenario: %d parity failure(s)\n%!" !failures;
    exit 1
  end
