(* Benchmark harness entry point.

   `dune exec bench/main.exe` with no arguments regenerates every table
   and figure of the paper's evaluation at laptop scale; subcommands run
   one experiment, `--quick` shrinks everything for smoke runs and
   `--full` uses the paper's problem sizes where memory allows. *)

open Cmdliner

(* The bigm_sharded scenario spawns process shards by re-exec'ing this
   binary; the hook must run before cmdliner parses anything. *)
let () = Rsm.Shard_sweep.worker_entry_if_requested ()

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Tiny problem sizes (smoke run).")

let full =
  Arg.(
    value & flag
    & info [ "full" ]
        ~doc:
          "Paper-size problems (21310-dimensional SRAM, 200-parameter \
           quadratic). Slow; needs several GB of memory.")

let run_all quick full =
  Fig4.run ~quick ();
  Tables.table1 ~quick ();
  Tables.tables_2_3 ~quick ~full ();
  Tables.table4 ~quick ~full ();
  Fig6.run ~quick ~full ();
  Ablation.run ~quick ();
  Recovery.run ~quick ();
  let robust_ok = Robustness.run ~quick () in
  Printf.printf "\nAll experiments complete. See EXPERIMENTS.md for the \
                 paper-vs-measured record.\n";
  if not robust_ok then exit 1

let positive_int =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= 1 -> Ok n
    | Ok n -> Error (`Msg (Printf.sprintf "%d is not a positive integer" n))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let domains =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "domains" ]
        ~doc:
          "Domains for the parallel arm of the speed comparison (default: \
           RSM_NUM_DOMAINS or the recommended domain count).")

let cmd_of name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ quick $ full)

let () =
  let default = Term.(const run_all $ quick $ full) in
  let info =
    Cmd.info "rsm-bench" ~version:"1.0"
      ~doc:
        "Reproduce the tables and figures of Li, 'Finding Deterministic \
         Solution from Underdetermined Equation' (DAC'09 / TCAD'10)."
  in
  let cmds =
    [
      cmd_of "fig4" "OpAmp linear error vs training samples (Fig. 4)"
        (fun quick _ -> Fig4.run ~quick ());
      cmd_of "table1" "OpAmp linear modeling cost (Table I)"
        (fun quick _ -> Tables.table1 ~quick ());
      cmd_of "table2" "OpAmp quadratic modeling error (Table II)"
        (fun quick full -> Tables.tables_2_3 ~quick ~full ());
      cmd_of "table3" "OpAmp quadratic modeling cost (Table III)"
        (fun quick full -> Tables.tables_2_3 ~quick ~full ());
      cmd_of "table4" "SRAM read path error and cost (Table IV)"
        (fun quick full -> Tables.table4 ~quick ~full ());
      cmd_of "fig6" "SRAM coefficient sparsity spectrum (Fig. 6)"
        (fun quick full -> Fig6.run ~quick ~full ());
      cmd_of "ablation" "Design-choice ablations (A1)"
        (fun quick _ -> Ablation.run ~quick ());
      cmd_of "recovery" "K = O(P log M) recovery phase diagram (A2)"
        (fun quick _ -> Recovery.run ~quick ());
      cmd_of "robustness"
        "Fault injection, screening and checkpoint/resume checks"
        (fun quick _ -> if not (Robustness.run ~quick ()) then exit 1);
      Cmd.v
        (Cmd.info "speed"
           ~doc:
             "Fitting-kernel micro-benchmarks + sequential-vs-parallel \
              speedup report (JSON)")
        Term.(
          const (fun quick _ domains -> Speed.run ~quick ?domains ())
          $ quick $ full $ domains);
      Cmd.v
        (Cmd.info "sweep"
           ~doc:
             "Gram-cached incremental sweep and fused multi-residual CV \
              sweep: per-step cost vs the exact engines, with embedded \
              parity checks (exit 1 on violation). Updates \
              BENCH_speed.json.")
        Term.(
          const (fun quick _ domains ->
              Speed.sweep_scenario ~quick ~domains ())
          $ quick $ full $ domains);
      Cmd.v
        (Cmd.info "multi"
           ~doc:
             "Fused multi-output fitting: one 4-metric op-amp LAR+CV fit vs \
              4 per-output fits, with embedded bitwise parity gates at \
              1/2/4 domains, dense and streamed (exit 1 on violation). \
              Updates BENCH_speed.json.")
        Term.(
          const (fun quick _ domains -> Multi_bench.run ~quick ?domains ())
          $ quick $ full $ domains);
      Cmd.v
        (Cmd.info "bigm-sharded"
           ~doc:
             "Column-sharded LAR at M = 10â¶ (quick: M â 2Â·10Â³):               process-sharded vs unsharded fit time, per-shard peak RSS,               embedded bitwise parity gate (exit 1 on violation). Updates               BENCH_speed.json.")
        Term.(
          const (fun quick _ domains -> Bigm_sharded.run ~quick ?domains ())
          $ quick $ full $ domains);
      Cmd.v
        (Cmd.info "eval"
           ~doc:
             "Serving engine: naive vs compiled-tape evals/sec and the \
              streamed yield-convergence curve, with embedded bitwise \
              parity gates (exit 1 on violation). Updates \
              BENCH_speed.json.")
        Term.(
          const (fun quick _ domains -> Eval_bench.run ~quick ~domains ())
          $ quick $ full $ domains);
    ]
  in
  exit (Cmd.eval (Cmd.group ~default info cmds))
