(* Parametric-yield estimation from a sparse performance model — the
   downstream application motivating RSM in the paper's introduction
   ("efficiently predicting performance distributions").

   Flow: fit a sparse offset model from a few hundred "simulations",
   compile it to a flat instruction tape (Serve.Eval), then answer
   yield questions with closed-form Gaussian math and with streamed
   model Monte Carlo on the compiled tape — bitwise equal to the naive
   term-by-term evaluator but with the shared Hermite recurrences
   hoisted out of the inner loop — and check both against brute-force
   simulator Monte Carlo. See SERVING.md for the serving architecture.

   Run with: dune exec examples/yield_estimation.exe *)

let () =
  let amp = Circuit.Opamp.build () in
  let dim = Circuit.Opamp.dim amp in
  let sim = Circuit.Opamp.simulator amp Circuit.Opamp.Offset in
  let rng = Randkit.Prng.create 21 in

  (* Step 1: fit the model from a modest simulation budget. *)
  let train = 400 in
  let data = Circuit.Simulator.run sim rng ~k:train in
  let basis = Polybasis.Basis.constant_linear dim in
  let g = Polybasis.Design.matrix_rows basis data.Circuit.Simulator.points in
  let r = Rsm.Select.omp rng ~max_lambda:60 g data.Circuit.Simulator.values in
  let model = r.Rsm.Select.model in
  Printf.printf
    "Fitted offset model from %d simulations: %d of %d bases selected\n" train
    (Rsm.Model.nnz model) (Polybasis.Basis.size basis);

  (* Step 2: where does the variance come from? *)
  Printf.printf "\nVariance attribution (total-effect shares):\n";
  Array.iter
    (fun (factor, share) ->
      Printf.printf "  factor %4d : %5.1f%%\n" factor (100. *. share))
    (Rsm.Sensitivity.top_factors ~n:5 model basis);
  Printf.printf "Model sigma: %.2f mV (mean %.2f mV)\n"
    (sqrt (Rsm.Sensitivity.total_variance model basis))
    (Rsm.Sensitivity.mean model basis);

  (* Step 3: yield against |offset| <= 25 mV, three ways. *)
  let spec = Rsm.Yield.spec_both ~lower:(-25.) ~upper:25. in

  (* (a) closed form: a linear Hermite model is exactly Gaussian. *)
  let y_gauss = Rsm.Yield.gaussian model basis spec in
  Printf.printf "\nYield for |offset| <= 25 mV:\n";
  Printf.printf "  closed-form Gaussian      : %.4f\n" y_gauss;

  (* (b) model Monte Carlo on the compiled tape. [Serve.Stream] pulls
     the sample stream through the domain pool in fixed-size batches
     (one PRNG child per batch), so the estimate is bitwise identical
     at every domain count; Yield.monte_carlo ~eval with the same tape
     would give the same numbers single-threaded. *)
  let tape = Serve.Eval.compile model basis in
  let t0 = Unix.gettimeofday () in
  let est =
    Serve.Stream.estimate ~pool:(Parallel.Pool.default ()) ~samples:1_000_000
      tape rng spec
  in
  let t_model = Unix.gettimeofday () -. t0 in
  Printf.printf "  compiled-tape MC (1M evals): %.4f +/- %.4f  [%.2f s]\n"
    est.Serve.Stream.yield est.Serve.Stream.std_error t_model;

  (* (c) brute-force simulator Monte Carlo (what the model replaces). *)
  let k_sim = 4000 in
  let check = Circuit.Simulator.run sim rng ~k:k_sim in
  let pass =
    Array.fold_left
      (fun acc v -> if Rsm.Yield.passes spec v then acc + 1 else acc)
      0 check.Circuit.Simulator.values
  in
  let y_sim = float_of_int pass /. float_of_int k_sim in
  Printf.printf "  simulator MC (%d runs)  : %.4f  [would cost %.0f s of Spectre]\n"
    k_sim y_sim
    (Circuit.Simulator.simulated_cost sim ~k:k_sim);

  (* Step 4: the whole distribution, model vs simulator. The ?eval
     override routes the same estimator through the compiled tape. *)
  let model_vals =
    Rsm.Yield.monte_carlo_values ~samples:20_000
      ~eval:(Serve.Eval.evaluator tape) model basis rng
  in
  let range = (-40., 40.) in
  let h_model = Stat.Histogram.create ~bins:20 ~range model_vals in
  let h_sim = Stat.Histogram.create ~bins:20 ~range check.Circuit.Simulator.values in
  Printf.printf
    "\nOffset distribution, model MC (20k cheap evals):\n%s"
    (Stat.Histogram.render ~width:40 h_model);
  Printf.printf "chi-square distance to simulator MC: %.4f (0 = identical)\n"
    (Stat.Histogram.chi2_distance h_model h_sim)
